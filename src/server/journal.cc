#include "server/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/binary_io.h"
#include "server/protocol.h"

namespace urr {

namespace {

constexpr size_t kRecordHeaderBytes = 12;  // u32 length + u64 checksum

uint64_t ReadLe64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string Hex64(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

Status WriteAllFd(int fd, std::string_view bytes, const std::string& what) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(what + ": write: " +
                             std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(const std::string& path, bool* missing) {
  *missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      *missing = true;
      return std::string();
    }
    return Status::IOError("cannot open " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IOError("read error on " + path);
  return out;
}

}  // namespace

std::string EncodeJournalRecord(std::string_view payload) {
  const uint64_t sum = Fnv1a64(payload.data(), payload.size());
  std::string out;
  out.reserve(kRecordHeaderBytes + payload.size());
  const uint32_t n = static_cast<uint32_t>(payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  for (int i = 0; i < 8; ++i) {
    out += static_cast<char>((sum >> (8 * i)) & 0xFF);  // little-endian
  }
  out.append(payload);
  return out;
}

Result<RequestJournal> RequestJournal::Open(const std::string& path,
                                            bool fsync) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open journal " + path + ": " +
                           std::string(std::strerror(errno)));
  }
  return RequestJournal(fd, fsync);
}

RequestJournal& RequestJournal::operator=(RequestJournal&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    fsync_ = o.fsync_;
    appended_ = o.appended_;
    o.fd_ = -1;
  }
  return *this;
}

void RequestJournal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status RequestJournal::Append(std::string_view payload) {
  if (fd_ < 0) return Status::Internal("journal is closed");
  URR_RETURN_NOT_OK(WriteAllFd(fd_, EncodeJournalRecord(payload), "journal"));
  if (fsync_ && ::fdatasync(fd_) != 0) {
    return Status::IOError("journal fdatasync: " +
                           std::string(std::strerror(errno)));
  }
  ++appended_;
  return Status::OK();
}

Result<JournalScan> ScanJournal(const std::string& path) {
  bool missing = false;
  URR_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path, &missing));
  JournalScan scan;
  scan.file_bytes = bytes.size();
  if (missing) return scan;  // no journal yet: empty valid prefix
  size_t off = 0;
  while (off < bytes.size()) {
    const size_t left = bytes.size() - off;
    if (left < kRecordHeaderBytes) {
      scan.tail = Status::IOError(
          "journal tail torn at byte " + std::to_string(off) + ": only " +
          std::to_string(left) + " of " +
          std::to_string(kRecordHeaderBytes) + " record-header bytes present");
      break;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + off);
    const uint32_t len = (static_cast<uint32_t>(p[0]) << 24) |
                         (static_cast<uint32_t>(p[1]) << 16) |
                         (static_cast<uint32_t>(p[2]) << 8) |
                         static_cast<uint32_t>(p[3]);
    if (len > kMaxFrameBytes) {
      scan.tail = Status::IOError(
          "journal record at byte " + std::to_string(off) + " declares " +
          std::to_string(len) + " payload bytes (limit " +
          std::to_string(kMaxFrameBytes) + "): corrupt length");
      break;
    }
    if (left < kRecordHeaderBytes + len) {
      scan.tail = Status::IOError(
          "journal tail torn at byte " + std::to_string(off) +
          ": record declares " + std::to_string(len) +
          " payload bytes, only " +
          std::to_string(left - kRecordHeaderBytes) + " present");
      break;
    }
    const uint64_t stored = ReadLe64(p + 4);
    const char* payload = bytes.data() + off + kRecordHeaderBytes;
    const uint64_t computed = Fnv1a64(payload, len);
    if (stored != computed) {
      scan.tail = Status::IOError(
          "journal record at byte " + std::to_string(off) +
          " fails its checksum: stored 0x" + Hex64(stored) +
          ", computed 0x" + Hex64(computed));
      break;
    }
    scan.payloads.emplace_back(payload, len);
    off += kRecordHeaderBytes + len;
    scan.valid_bytes = off;
  }
  return scan;
}

Status TruncateJournal(const std::string& path, uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IOError("truncate " + path + " to " +
                           std::to_string(valid_bytes) + " bytes: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

// --- Service checkpoints ---------------------------------------------------
//
// Text envelope around the engine's urrckpt snapshot:
//
//   urrsvcckpt 1
//   seq <journal records applied>
//   dedup <K>
//   <req_id> <response bytes> <response>     (x K, responses are one-line)
//   engine <byte length>
//   <urrckpt text, exactly that many bytes>
//   checksum <fnv1a64 hex of every byte above>

Status WriteServiceCheckpoint(const std::string& dir,
                              const ServiceCheckpoint& ckpt) {
  std::string body = "urrsvcckpt 1\n";
  body += "seq " + std::to_string(ckpt.seq) + "\n";
  body += "dedup " + std::to_string(ckpt.dedup.size()) + "\n";
  for (const auto& [req_id, response] : ckpt.dedup) {
    body += std::to_string(req_id) + " " +
            std::to_string(response.size()) + " " + response + "\n";
  }
  body += "engine " + std::to_string(ckpt.engine_checkpoint.size()) + "\n";
  body += ckpt.engine_checkpoint;
  body += "checksum " + std::to_string(Fnv1a64(body.data(), body.size())) +
          "\n";

  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%012lld",
                static_cast<long long>(ckpt.seq));
  const std::string path = dir + "/" + name;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open " + tmp + ": " +
                           std::string(std::strerror(errno)));
  }
  Status st = WriteAllFd(fd, body, "checkpoint");
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::IOError("checkpoint fsync: " +
                         std::string(std::strerror(errno)));
  }
  ::close(fd);
  if (!st.ok()) {
    ::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Status::IOError("rename " + tmp + " -> " + path + ": " + err);
  }
  // fsync the directory so the rename itself survives a crash.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Result<ServiceCheckpoint> ReadServiceCheckpoint(const std::string& path) {
  bool missing = false;
  URR_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path, &missing));
  if (missing) return Status::IOError("checkpoint " + path + " is missing");
  // Verify the whole-file checksum first: the trailer is the final line.
  const size_t trailer = bytes.rfind("checksum ");
  if (trailer == std::string::npos ||
      (trailer != 0 && bytes[trailer - 1] != '\n')) {
    return Status::IOError("checkpoint " + path + " has no checksum trailer");
  }
  // The trailer must be exactly "checksum <digits>\n" and end the file —
  // a lost or damaged final byte is still a torn checkpoint.
  const char* digits = bytes.c_str() + trailer + std::strlen("checksum ");
  char* end = nullptr;
  const uint64_t stored = std::strtoull(digits, &end, 10);
  if (end == digits || end != bytes.c_str() + bytes.size() - 1 ||
      *end != '\n') {
    return Status::IOError("checkpoint " + path +
                           " has a malformed checksum trailer");
  }
  const uint64_t computed = Fnv1a64(bytes.data(), trailer);
  if (stored != computed) {
    return Status::IOError("checkpoint " + path +
                           " fails its checksum: stored " +
                           std::to_string(stored) + ", computed " +
                           std::to_string(computed));
  }
  // Parse the envelope.
  size_t pos = 0;
  const auto next_line = [&]() -> std::string {
    const size_t nl = bytes.find('\n', pos);
    if (nl == std::string::npos) {
      const std::string line = bytes.substr(pos);
      pos = bytes.size();
      return line;
    }
    const std::string line = bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  if (next_line() != "urrsvcckpt 1") {
    return Status::IOError("checkpoint " + path +
                           " has an unknown format tag (want urrsvcckpt 1)");
  }
  ServiceCheckpoint ckpt;
  std::string line = next_line();
  long long seq = 0;
  if (std::sscanf(line.c_str(), "seq %lld", &seq) != 1) {
    return Status::IOError("checkpoint " + path + ": bad seq line");
  }
  ckpt.seq = seq;
  long long dedup_count = 0;
  line = next_line();
  if (std::sscanf(line.c_str(), "dedup %lld", &dedup_count) != 1 ||
      dedup_count < 0) {
    return Status::IOError("checkpoint " + path + ": bad dedup line");
  }
  ckpt.dedup.reserve(static_cast<size_t>(dedup_count));
  for (long long i = 0; i < dedup_count; ++i) {
    // "<req_id> <byte length> <response>" — the response is copied by
    // length, so its content is never reparsed.
    long long req_id = 0, len = 0;
    int consumed = 0;
    line.clear();
    const size_t start = pos;
    line = next_line();
    if (std::sscanf(line.c_str(), "%lld %lld %n", &req_id, &len,
                    &consumed) != 2 ||
        len < 0 ||
        static_cast<size_t>(consumed) + static_cast<size_t>(len) !=
            line.size()) {
      return Status::IOError("checkpoint " + path + ": bad dedup entry " +
                             std::to_string(i) + " at byte " +
                             std::to_string(start));
    }
    ckpt.dedup.emplace_back(req_id,
                            line.substr(static_cast<size_t>(consumed)));
  }
  long long engine_len = 0;
  line = next_line();
  if (std::sscanf(line.c_str(), "engine %lld", &engine_len) != 1 ||
      engine_len < 0 ||
      pos + static_cast<size_t>(engine_len) > trailer) {
    return Status::IOError("checkpoint " + path + ": bad engine line");
  }
  ckpt.engine_checkpoint = bytes.substr(pos, static_cast<size_t>(engine_len));
  return ckpt;
}

Result<std::vector<std::pair<int64_t, std::string>>> ListServiceCheckpoints(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot list " + dir + ": " +
                           std::string(std::strerror(errno)));
  }
  std::vector<std::pair<int64_t, std::string>> out;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("ckpt-", 0) != 0 || name.size() <= 5) continue;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".tmp") continue;
    char* end = nullptr;
    const long long seq = std::strtoll(name.c_str() + 5, &end, 10);
    if (end == nullptr || *end != '\0') continue;
    out.emplace_back(seq, dir + "/" + name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return out;
}

// --- Dedup cache -----------------------------------------------------------

const std::string* DedupCache::Lookup(int64_t req_id) const {
  const auto it = map_.find(req_id);
  return it == map_.end() ? nullptr : &it->second;
}

void DedupCache::Insert(int64_t req_id, std::string response) {
  const auto [it, inserted] = map_.try_emplace(req_id, std::move(response));
  if (!inserted) return;  // first execution wins; a duplicate never replaces
  order_.push_back(req_id);
  while (order_.size() > static_cast<size_t>(capacity_)) {
    map_.erase(order_.front());
    order_.pop_front();
  }
}

std::vector<std::pair<int64_t, std::string>> DedupCache::Entries() const {
  std::vector<std::pair<int64_t, std::string>> out;
  out.reserve(order_.size());
  for (const int64_t id : order_) {
    const auto it = map_.find(id);
    if (it != map_.end()) out.emplace_back(id, it->second);
  }
  return out;
}

}  // namespace urr

// Server-side admission control and overload accounting.
//
// Two gates protect the service (DESIGN.md §12):
//   1. Session gate — at most `max_sessions` concurrent connections. The
//      accept loop blocks (backpressure: the kernel listen backlog, then
//      clients' connect queues, absorb the excess) instead of accepting a
//      connection it cannot serve.
//   2. Queue gate — the engine's own `max_queue`: an arrival landing on a
//      full dispatch queue is rejected by HandleArrival with
//      EngineReject::kQueueFull and surfaces to the client as a 429.
//
// This class owns gate 1 and aggregates what both gates shed, so the
// metrics response can report overload behavior without touching the
// engine's internals.
#ifndef URR_SERVER_ADMISSION_H_
#define URR_SERVER_ADMISSION_H_

#include <condition_variable>
#include <mutex>

#include "engine/engine_metrics.h"

namespace urr {

class AdmissionController {
 public:
  /// `max_sessions` <= 0 means unbounded.
  explicit AdmissionController(int max_sessions)
      : max_sessions_(max_sessions) {}

  /// Blocks until a session slot is free (or `Close()` is called); returns
  /// false once closed — the accept loop should stop.
  bool AcquireSession();
  void ReleaseSession();

  /// Wakes every blocked AcquireSession with a false return; further
  /// acquisitions fail immediately. Called on shutdown.
  void Close();

  int active_sessions() const;
  int peak_sessions() const;
  int64_t total_sessions() const;

  /// Records a request the service turned away (429/503) so overload is
  /// visible in the metrics response even though the engine never saw the
  /// request.
  void CountShed(EngineReject reason);
  RejectCounts shed() const;

 private:
  const int max_sessions_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int active_ = 0;
  int peak_ = 0;
  int64_t total_ = 0;
  RejectCounts shed_;
};

}  // namespace urr

#endif  // URR_SERVER_ADMISSION_H_

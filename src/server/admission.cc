#include "server/admission.h"

namespace urr {

bool AdmissionController::AcquireSession() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return closed_ || max_sessions_ <= 0 || active_ < max_sessions_;
  });
  if (closed_) return false;
  ++active_;
  ++total_;
  if (active_ > peak_) peak_ = active_;
  return true;
}

void AdmissionController::ReleaseSession() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
  }
  cv_.notify_one();
}

void AdmissionController::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

int AdmissionController::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int AdmissionController::peak_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

int64_t AdmissionController::total_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void AdmissionController::CountShed(EngineReject reason) {
  std::lock_guard<std::mutex> lock(mu_);
  shed_.Bump(reason);
}

RejectCounts AdmissionController::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

}  // namespace urr

// Load generation against a running dispatch server, as a library so the
// CLI tool (tools/urr_loadgen.cc), the benchmark (bench/bench_server.cc)
// and the tests share one implementation.
//
// Two drive modes:
//  - Open loop (RunOpenLoop): requests fire on a precomputed arrival
//    schedule — homogeneous Poisson or a two-peak day profile (thinning) —
//    spread over N connections, regardless of how fast the server answers.
//    Latency is measured from the *scheduled* send instant to the response
//    (so server-side queueing shows up as tail latency instead of being
//    silently absorbed — the coordinated-omission correction). Served
//    (200) and admission-shed (429) responses form separate latency
//    distributions — fast rejections must not dilute the served tail.
//  - Replay (RunReplay): fetches the server's recorded workload and drives
//    every arrival/cancellation over ONE connection at its recorded
//    virtual time, in the engine's (time, rank) order. Against a
//    virtual-clock server this reproduces the batch event log byte for
//    byte; the differential tests are built on it.
#ifndef URR_SERVER_LOADGEN_H_
#define URR_SERVER_LOADGEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_parser.h"
#include "common/rng.h"
#include "server/protocol.h"

namespace urr {

/// Where the server listens. TCP when port > 0, else the unix path.
struct Endpoint {
  int port = 0;
  std::string unix_path;
};

/// One blocking client connection speaking the framed protocol. Move-only;
/// closes on destruction.
class ClientConnection {
 public:
  static Result<ClientConnection> Connect(const Endpoint& endpoint);

  ClientConnection(ClientConnection&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  ClientConnection& operator=(ClientConnection&& o) noexcept;
  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;
  ~ClientConnection() { Close(); }

  /// Sends one frame.
  Status Send(std::string_view payload);
  /// Sends raw bytes verbatim (robustness tests: truncated/corrupt frames).
  Status SendRaw(std::string_view bytes);
  /// Receives one frame payload; IOError on EOF/short read.
  Result<std::string> Recv();
  /// Send + Recv + parse the response JSON.
  Result<JsonValue> Call(std::string_view payload);

  /// Applies SO_RCVTIMEO/SO_SNDTIMEO: a server stalled longer than
  /// `seconds` turns the blocking Recv/Send into an IOError("timed out"),
  /// which the resilient client treats as an ambiguous failure.
  Status SetTimeout(double seconds);

  void Close();
  int fd() const { return fd_; }

 private:
  explicit ClientConnection(int fd) : fd_(fd) {}
  int fd_ = -1;
  FrameReader reader_;
};

/// Retry/timeout policy of a ResilientClient.
struct RetryPolicy {
  /// Total tries per request (1 initial + max_attempts-1 retries). Every
  /// retry resends the identical payload — same req_id — so the server's
  /// dedup window makes an ambiguous failure (timeout, dropped
  /// connection) safe to retry.
  int max_attempts = 4;
  /// Exponential backoff before each retry: base·2^k seconds, capped at
  /// `max_backoff`, scaled by a uniform jitter in [0.5, 1.5) so a fleet of
  /// clients does not reconnect in lockstep after a server restart.
  double base_backoff = 0.05;
  double max_backoff = 1.0;
  /// Per-request socket timeout (seconds); 0 = block forever.
  double request_timeout = 10.0;
};

/// A client connection that survives server restarts: Call() reconnects
/// with exponential backoff + jitter and resends on transport failure, up
/// to the policy's attempt budget. Counters expose how much wall time the
/// connection gaps consumed — the open-loop driver folds that time into
/// the latency distribution instead of losing it (coordinated-omission
/// correction across reconnects).
class ResilientClient {
 public:
  ResilientClient(const Endpoint& endpoint, const RetryPolicy& policy,
                  uint64_t jitter_seed);

  /// Sends `payload`, retrying through reconnects per the policy. Returns
  /// the last transport error once the attempt budget is exhausted.
  Result<JsonValue> Call(std::string_view payload);

  /// Establishes the connection up front (Call() otherwise connects
  /// lazily) — the open-loop driver warms its workers before the schedule
  /// clock starts.
  Status Preconnect() { return EnsureConnected(); }

  int64_t reconnects() const { return reconnects_; }
  int64_t retries() const { return retries_; }
  /// Wall seconds spent disconnected inside Call(): backoff sleeps plus
  /// connect() attempts (failed and successful).
  double gap_seconds() const { return gap_seconds_; }

 private:
  Status EnsureConnected();

  Endpoint endpoint_;
  RetryPolicy policy_;
  Rng rng_;
  std::optional<ClientConnection> conn_;
  bool ever_connected_ = false;
  int64_t reconnects_ = 0;
  int64_t retries_ = 0;
  double gap_seconds_ = 0;
};

struct LoadGenOptions {
  int connections = 4;
  /// Mean arrival rate, requests per (real) second.
  double rate = 100;
  /// "const" = homogeneous Poisson; "peak" = two-peak day profile (morning
  /// and evening rush) with the same mean rate, via thinning.
  std::string profile = "const";
  /// Schedule length in real seconds; generation stops early when the
  /// server's rider universe is exhausted.
  double duration = 5;
  uint64_t seed = 1;
  /// Cancel this fraction of submitted riders ~50 ms after submission.
  double cancel_fraction = 0;
  /// Skip this many riders of the server's recorded arrival order before
  /// drawing the schedule — consecutive phases against one server (e.g.
  /// the storm bench's before/during/after) submit disjoint riders.
  int64_t rider_offset = 0;
  /// Reconnect/retry/timeout behavior of every worker connection.
  RetryPolicy retry;
};

struct LoadGenReport {
  int64_t sent = 0;      // submit requests attempted (cancels counted apart)
  int64_t cancels = 0;   // cancel requests attempted (sent + cancels = total)
  int64_t ok = 0;        // 2xx responses (queued/assigned/rejected-infeasible)
  int64_t queued = 0;
  int64_t assigned = 0;
  int64_t rejected_admission = 0;  // 429 queue_full
  int64_t rejected_infeasible = 0; // 200 result:"rejected"
  int64_t errors = 0;    // transport errors + 4xx/5xx other than 429
  double elapsed = 0;    // real seconds, first send to last response
  /// E2e latency of *served* (code 200) responses only, seconds. 429
  /// admission sheds return fast by design; mixing them in would flatter
  /// the tail exactly when overload grows the shed share.
  double p50 = 0, p95 = 0, p99 = 0, max = 0;
  /// E2e latency of 429 admission-shed responses, reported separately.
  double shed_p50 = 0, shed_p95 = 0, shed_p99 = 0;
  double goodput = 0;          // ok responses per second
  double rejection_rate = 0;   // 429s / sent
  /// Resilience accounting: connections re-established, payload resends,
  /// and the wall seconds the reconnect gaps consumed. Gap time is NOT
  /// subtracted from latencies — a request scheduled during an outage
  /// reports the outage in its latency (coordinated-omission correction
  /// must cover reconnects, not just server queueing).
  int64_t reconnects = 0;
  int64_t retries = 0;
  double gap_seconds = 0;
  std::string ToJson() const;
};

/// Open-loop run against a steady-clock server (requests carry no times).
/// Every submit/cancel carries a rider-derived idempotent req_id, so
/// worker retries after ambiguous failures cannot double-submit.
Result<LoadGenReport> RunOpenLoop(const Endpoint& endpoint,
                                  const LoadGenOptions& options);

/// Replays the server's recorded workload at recorded virtual times over
/// one connection (virtual-clock server). `shutdown_after` sends the
/// shutdown request once the schedule is drained (the differential flow:
/// the server then finalizes and writes its --log). `limit` > 0 stops
/// after that many entries — the crash-recovery harness replays a prefix,
/// kills the server, then replays the full schedule against the recovered
/// server (the prefix duplicates are absorbed by req_id dedup, entry index
/// = req_id).
Result<LoadGenReport> RunReplay(const Endpoint& endpoint, bool shutdown_after,
                                int64_t limit = 0);

}  // namespace urr

#endif  // URR_SERVER_LOADGEN_H_

#include "server/dispatch_service.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/json_writer.h"

namespace urr {

namespace {

/// Starts the standard response envelope; the caller adds op fields and
/// closes the object.
JsonWriter Envelope(int64_t id, bool ok, int code) {
  JsonWriter w;
  w.BeginObject().Field("id", id).Field("ok", ok).Field("code", code);
  return w;
}

std::string JournalPath(const std::string& dir) {
  return dir + "/journal.wal";
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Status::IOError("cannot create journal dir " + dir + ": " +
                         std::string(std::strerror(errno)));
}

}  // namespace

DispatchService::DispatchService(const StreamingWorkload* workload,
                                 SolverContext* ctx,
                                 const EngineConfig& engine_config,
                                 const ServiceConfig& config,
                                 AdmissionController* admission)
    : workload_(workload),
      config_(config),
      admission_(admission),
      engine_(workload, ctx, engine_config),
      steady_(config.timescale),
      dedup_(config.dedup_window) {}

Status DispatchService::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.journal_dir.empty()) {
    URR_RETURN_NOT_OK(engine_.BeginLive());
  } else {
    URR_RETURN_NOT_OK(EnsureDir(config_.journal_dir));
    if (config_.recover) {
      URR_RETURN_NOT_OK(RecoverLocked());
    } else {
      URR_RETURN_NOT_OK(StartFreshJournalLocked());
    }
    URR_ASSIGN_OR_RETURN(
        RequestJournal journal,
        RequestJournal::Open(JournalPath(config_.journal_dir),
                             config_.journal_fsync));
    journal_.emplace(std::move(journal));
  }
  epoch_ = engine_.now();
  steady_.Start();
  return Status::OK();
}

Status DispatchService::StartFreshJournalLocked() {
  // Refuse to append to leftover state: silently continuing a previous
  // run's journal would interleave two incompatible histories.
  URR_ASSIGN_OR_RETURN(JournalScan scan,
                       ScanJournal(JournalPath(config_.journal_dir)));
  if (scan.file_bytes > 0) {
    return Status::InvalidArgument(
        "journal dir " + config_.journal_dir + " already holds " +
        std::to_string(scan.payloads.size()) +
        " record(s); recover from it (--recover) or point at a fresh "
        "directory");
  }
  return engine_.BeginLive();
}

Status DispatchService::RecoverLocked() {
  // 1. Newest checkpoint that validates (file-level checksum + envelope).
  //    Corrupt ones — e.g. a crash raced the atomic rename — are skipped
  //    with a note; with none left the journal replays from the start.
  URR_ASSIGN_OR_RETURN(auto checkpoints,
                       ListServiceCheckpoints(config_.journal_dir));
  ServiceCheckpoint ckpt;
  bool have_checkpoint = false;
  for (const auto& [seq, path] : checkpoints) {
    Result<ServiceCheckpoint> loaded = ReadServiceCheckpoint(path);
    if (loaded.ok()) {
      ckpt = std::move(*loaded);
      have_checkpoint = true;
      break;
    }
    if (!recovery_note_.empty()) recovery_note_ += "; ";
    recovery_note_ += loaded.status().message();
  }
  if (have_checkpoint) {
    URR_RETURN_NOT_OK(engine_.Restore(ckpt.engine_checkpoint));
    for (auto& [req_id, response] : ckpt.dedup) {
      dedup_.Insert(req_id, std::move(response));
    }
    journal_seq_ = ckpt.seq;
    last_checkpoint_seq_ = ckpt.seq;
    recovered_checkpoint_seq_ = ckpt.seq;
  }
  URR_RETURN_NOT_OK(engine_.BeginLive());
  // 2. Scan the journal; a torn/corrupt tail is truncated to the valid
  //    prefix — its precise Status is kept, not fatal.
  const std::string path = JournalPath(config_.journal_dir);
  URR_ASSIGN_OR_RETURN(JournalScan scan, ScanJournal(path));
  if (!scan.tail.ok()) {
    URR_RETURN_NOT_OK(TruncateJournal(path, scan.valid_bytes));
    if (!recovery_note_.empty()) recovery_note_ += "; ";
    recovery_note_ += "truncated torn tail (" + scan.tail.message() + ")";
  }
  if (static_cast<int64_t>(scan.payloads.size()) < journal_seq_) {
    return Status::IOError(
        "journal holds " + std::to_string(scan.payloads.size()) +
        " valid record(s) but the checkpoint was taken at seq " +
        std::to_string(journal_seq_) +
        " — the journal and checkpoints are from different runs");
  }
  // 3. Replay the suffix through the same dispatch path the live requests
  //    take. Dispatch is deterministic in (request, stamped time) order,
  //    so this reproduces the pre-crash engine state and event log and
  //    rebuilds the dedup window with the original responses.
  for (size_t i = static_cast<size_t>(journal_seq_); i < scan.payloads.size();
       ++i) {
    Result<Request> req = ParseRequest(scan.payloads[i]);
    if (!req.ok()) {
      return Status::IOError("journal record " + std::to_string(i) +
                             " does not parse: " + req.status().message());
    }
    if (!req->has_time) {
      return Status::IOError("journal record " + std::to_string(i) +
                             " carries no time stamp");
    }
    std::string response = DispatchMutating(*req, req->time);
    if (req->req_id >= 0) dedup_.Insert(req->req_id, std::move(response));
    ++journal_seq_;
    ++recovered_replayed_;
  }
  recovered_ = true;
  return Status::OK();
}

Status DispatchService::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_.finished()) return Status::OK();
  return engine_.FinishLive();
}

std::string DispatchService::SerializedLog() {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.SerializedLog();
}

std::string DispatchService::MetricsJson() {
  std::lock_guard<std::mutex> lock(mu_);
  return EngineMetricsJson(engine_.metrics(), /*include_windows=*/false);
}

int DispatchService::CodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange: return 400;
    default: return 500;
  }
}

std::string DispatchService::Handle(std::string_view payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Result<Request> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    return ErrorResponse(-1, 400, parsed.status().message());
  }
  return HandleParsed(*parsed);
}

std::string DispatchService::HandleParsed(const Request& req) {
  std::lock_guard<std::mutex> lock(mu_);
  // Reject mutations once a shutdown was served; reads stay available so
  // draining clients can still observe final state.
  const bool mutating = req.op == RequestOp::kSubmitRider ||
                        req.op == RequestOp::kCancelRider ||
                        req.op == RequestOp::kInjectFault ||
                        req.op == RequestOp::kTick;
  if (mutating && shutdown_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(req.id, 503, "service is shutting down");
  }
  // Stamp the injection time. Virtual clock: the request's own `time` is
  // the time (required for mutations). Steady clock: elapsed scaled wall
  // time since Start(), clamped monotone against the engine clock.
  Cost t = engine_.now();
  if (mutating) {
    if (config_.virtual_clock) {
      if (!req.has_time) {
        return ErrorResponse(
            req.id, 400,
            "this server runs a virtual clock: the request must carry "
            "\"time\"");
      }
      t = req.time;
    } else {
      t = std::max(engine_.now(), epoch_ + steady_.Now());
      if (req.op == RequestOp::kTick && req.has_time) t = req.time;
    }
  }
  if (mutating) return HandleMutating(req, t);
  switch (req.op) {
    case RequestOp::kQueryStatus: return HandleQuery(req);
    case RequestOp::kMetrics: return HandleMetrics(req);
    case RequestOp::kWorkload: return HandleWorkload(req);
    case RequestOp::kShutdown: return HandleShutdown(req);
    default: break;
  }
  return ErrorResponse(req.id, 500, "unhandled op");
}

std::string DispatchService::HandleMutating(const Request& req, Cost t) {
  // Idempotency first: a retry of an executed req_id gets the cached
  // response of the first execution — it must not re-journal, re-mutate,
  // or trip the engine's monotone-time check.
  if (req.req_id >= 0) {
    if (const std::string* cached = dedup_.Lookup(req.req_id)) {
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached;
    }
  }
  if (journal_.has_value()) {
    if (!journal_fault_.ok()) {
      // A previous append failed: the journal no longer covers the engine
      // state, so accepting further mutations would make recovery lie.
      return ErrorResponse(req.id, 503,
                           "journal unavailable: " + journal_fault_.message());
    }
    // Write-ahead: the record (with its stamped time) is durable before
    // the engine sees the request. A crash between append and apply is
    // safe — recovery replays the record; the client saw no response and
    // retries into the rebuilt dedup window.
    const Status st = journal_->Append(SerializeRequest(req, t));
    if (!st.ok()) {
      journal_fault_ = st;
      return ErrorResponse(req.id, 503,
                           "journal unavailable: " + st.message());
    }
    ++journal_seq_;
  }
  std::string response = DispatchMutating(req, t);
  if (req.req_id >= 0) dedup_.Insert(req.req_id, response);
  MaybeCheckpointLocked();
  return response;
}

std::string DispatchService::DispatchMutating(const Request& req, Cost t) {
  switch (req.op) {
    case RequestOp::kSubmitRider: return HandleSubmit(req, t);
    case RequestOp::kCancelRider: return HandleCancel(req, t);
    case RequestOp::kInjectFault: return HandleInject(req, t);
    case RequestOp::kTick: return HandleTick(req, t);
    default: break;
  }
  return ErrorResponse(req.id, 500, "unhandled mutating op");
}

void DispatchService::MaybeCheckpointLocked() {
  if (!journal_.has_value() || config_.checkpoint_every <= 0) return;
  if (journal_seq_ - last_checkpoint_seq_ < config_.checkpoint_every) return;
  ServiceCheckpoint ckpt;
  ckpt.seq = journal_seq_;
  ckpt.dedup = dedup_.Entries();
  ckpt.engine_checkpoint = engine_.Checkpoint();
  const Status st = WriteServiceCheckpoint(config_.journal_dir, ckpt);
  if (st.ok()) {
    last_checkpoint_seq_ = journal_seq_;
    checkpoint_fault_ = Status::OK();
  } else {
    // Non-fatal: the journal still covers everything, recovery just
    // replays a longer suffix. Kept for the metrics report.
    checkpoint_fault_ = st;
  }
}

std::string DispatchService::HandleSubmit(const Request& req, Cost t) {
  const auto n = static_cast<RiderId>(engine_.instance().riders.size());
  if (req.rider < 0 || req.rider >= n) {
    return ErrorResponse(req.id, 404,
                         "unknown rider " + std::to_string(req.rider));
  }
  Result<DispatchEngine::SubmitOutcome> out = engine_.SubmitLive(req.rider, t);
  if (!out.ok()) {
    return ErrorResponse(req.id, CodeFor(out.status()),
                         out.status().message());
  }
  if (out->reject == EngineReject::kQueueFull) {
    // Admission control shed the request: the 429 of this protocol.
    if (admission_ != nullptr) admission_->CountShed(EngineReject::kQueueFull);
    JsonWriter w = Envelope(req.id, false, 429);
    w.Field("result", "rejected")
        .Field("reason", EngineRejectName(out->reject))
        .Field("queue_depth", engine_.queue_depth())
        .EndObject();
    return w.str();
  }
  JsonWriter w = Envelope(req.id, true, 200);
  if (out->assigned) {
    w.Field("result", "assigned").Field("vehicle", out->vehicle);
  } else if (out->queued) {
    w.Field("result", "queued").Field("queue_depth", engine_.queue_depth());
  } else if (out->reject != EngineReject::kNone) {
    // Dispatch-infeasible (W = 0 path): the request was served, the answer
    // is no — a 200 with the reason, not an error.
    w.Field("result", "rejected").Field("reason",
                                        EngineRejectName(out->reject));
  } else {
    w.Field("result", "done");  // e.g. expired at submit instant
  }
  w.Field("time", t).EndObject();
  return w.str();
}

std::string DispatchService::HandleCancel(const Request& req, Cost t) {
  const auto n = static_cast<RiderId>(engine_.instance().riders.size());
  if (req.rider < 0 || req.rider >= n) {
    return ErrorResponse(req.id, 404,
                         "unknown rider " + std::to_string(req.rider));
  }
  Result<bool> out = engine_.CancelLive(req.rider, t);
  if (!out.ok()) {
    return ErrorResponse(req.id, CodeFor(out.status()),
                         out.status().message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", *out ? "cancelled" : "ignored")
      .Field("time", t)
      .EndObject();
  return w.str();
}

std::string DispatchService::HandleQuery(const Request& req) {
  Result<DispatchEngine::RiderStatus> st = engine_.QueryRider(req.rider);
  if (!st.ok()) {
    return ErrorResponse(req.id, 404, st.status().message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("state", st->state)
      .Field("vehicle", st->vehicle)
      .Field("booked_utility", st->booked_utility)
      .Field("arrival_time", st->arrival_time)
      .EndObject();
  return w.str();
}

std::string DispatchService::HandleMetrics(const Request& req) {
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("now", engine_.now())
      .Field("queue_depth", engine_.queue_depth())
      .Field("finished", engine_.finished())
      .Field("requests", requests_.load(std::memory_order_relaxed))
      .Field("rejected_shutdown",
             rejected_shutdown_.load(std::memory_order_relaxed));
  if (admission_ != nullptr) {
    const RejectCounts shed = admission_->shed();
    w.Key("sessions")
        .BeginObject()
        .Field("active", admission_->active_sessions())
        .Field("peak", admission_->peak_sessions())
        .Field("total", admission_->total_sessions())
        .EndObject();
    w.Field("shed_queue_full", shed.queue_full);
  }
  if (journal_.has_value()) {
    w.Key("journal")
        .BeginObject()
        .Field("records", journal_seq_)
        .Field("last_checkpoint_seq", last_checkpoint_seq_)
        .Field("dedup_hits", dedup_hits_.load(std::memory_order_relaxed))
        .Field("dedup_size", dedup_.size())
        .Field("append_fault", journal_fault_.ok() ? std::string()
                                                   : journal_fault_.message())
        .Field("checkpoint_fault",
               checkpoint_fault_.ok() ? std::string()
                                      : checkpoint_fault_.message())
        .Field("recovered", recovered_)
        .Field("recovered_checkpoint_seq", recovered_checkpoint_seq_)
        .Field("recovered_replayed", recovered_replayed_)
        .Field("recovery_note", recovery_note_)
        .EndObject();
  }
  // Splice the canonical engine metrics object in as-is.
  w.EndObject();
  std::string out = w.str();
  out.pop_back();  // the envelope's closing '}'
  out += ",\"metrics\":";
  out += EngineMetricsJson(engine_.metrics(), /*include_windows=*/false);
  out += '}';
  return out;
}

std::string DispatchService::HandleWorkload(const Request& req) {
  // The recorded request schedule, for replay drivers: they fetch it here
  // instead of rebuilding the world, then submit each entry at its
  // recorded time over the socket. offset/limit window each list
  // independently so a workload too large for one frame (the 1 MiB cap)
  // can be fetched in pages; the *_total fields tell the client when it
  // has everything.
  const auto window = [&](size_t total) -> std::pair<size_t, size_t> {
    const size_t begin = std::min(static_cast<size_t>(req.offset), total);
    const size_t end = req.limit == 0
                           ? total
                           : std::min(begin + static_cast<size_t>(req.limit),
                                      total);
    return {begin, end};
  };
  JsonWriter w = Envelope(req.id, true, 200);
  const auto [a_begin, a_end] = window(workload_->arrivals.size());
  w.Key("arrivals").BeginArray();
  for (size_t i = a_begin; i < a_end; ++i) {
    const RiderArrival& a = workload_->arrivals[i];
    w.BeginArray().Value(a.rider).Value(a.time).EndArray();
  }
  w.EndArray();
  const auto [c_begin, c_end] = window(workload_->cancellations.size());
  w.Key("cancellations").BeginArray();
  for (size_t i = c_begin; i < c_end; ++i) {
    const CancelRequest& c = workload_->cancellations[i];
    w.BeginArray().Value(c.rider).Value(c.time).EndArray();
  }
  w.EndArray();
  w.Field("arrivals_total",
          static_cast<int64_t>(workload_->arrivals.size()))
      .Field("cancellations_total",
             static_cast<int64_t>(workload_->cancellations.size()))
      .Field("riders", static_cast<int>(engine_.instance().riders.size()))
      .Field("vehicles", static_cast<int>(engine_.instance().vehicles.size()))
      .Field("now", engine_.now())
      .EndObject();
  return w.str();
}

std::string DispatchService::HandleInject(const Request& req, Cost t) {
  Status st = Status::OK();
  if (req.fault_kind == "breakdown") {
    if (req.vehicle < 0 ||
        req.vehicle >= static_cast<int>(engine_.instance().vehicles.size())) {
      return ErrorResponse(req.id, 404,
                           "unknown vehicle " + std::to_string(req.vehicle));
    }
    st = engine_.InjectBreakdownLive(req.vehicle, t);
  } else if (req.fault_kind == "edge_disrupt") {
    st = engine_.InjectEdgeFaultLive(req.edge_a, req.edge_b, req.factor, t);
  } else {
    st = engine_.InjectEdgeRestoreLive(req.edge_a, req.edge_b, t);
  }
  if (!st.ok()) {
    return ErrorResponse(req.id, CodeFor(st), st.message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", "injected").Field("time", t).EndObject();
  return w.str();
}

std::string DispatchService::HandleTick(const Request& req, Cost t) {
  const Status st = engine_.AdvanceLive(t);
  if (!st.ok()) {
    return ErrorResponse(req.id, CodeFor(st), st.message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", "ticked").Field("now", engine_.now()).EndObject();
  return w.str();
}

std::string DispatchService::HandleShutdown(const Request& req) {
  shutdown_.store(true, std::memory_order_release);
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", "shutting_down").EndObject();
  return w.str();
}

}  // namespace urr

#include "server/dispatch_service.h"

#include <algorithm>

#include "common/json_writer.h"

namespace urr {

namespace {

/// Starts the standard response envelope; the caller adds op fields and
/// closes the object.
JsonWriter Envelope(int64_t id, bool ok, int code) {
  JsonWriter w;
  w.BeginObject().Field("id", id).Field("ok", ok).Field("code", code);
  return w;
}

}  // namespace

DispatchService::DispatchService(const StreamingWorkload* workload,
                                 SolverContext* ctx,
                                 const EngineConfig& engine_config,
                                 const ServiceConfig& config,
                                 AdmissionController* admission)
    : workload_(workload),
      config_(config),
      admission_(admission),
      engine_(workload, ctx, engine_config),
      steady_(config.timescale) {}

Status DispatchService::Start() {
  URR_RETURN_NOT_OK(engine_.BeginLive());
  epoch_ = engine_.now();
  steady_.Start();
  return Status::OK();
}

Status DispatchService::Finish() {
  std::lock_guard<std::mutex> lock(mu_);
  if (engine_.finished()) return Status::OK();
  return engine_.FinishLive();
}

std::string DispatchService::SerializedLog() {
  std::lock_guard<std::mutex> lock(mu_);
  return engine_.SerializedLog();
}

std::string DispatchService::MetricsJson() {
  std::lock_guard<std::mutex> lock(mu_);
  return EngineMetricsJson(engine_.metrics(), /*include_windows=*/false);
}

int DispatchService::CodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kAlreadyExists: return 409;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange: return 400;
    default: return 500;
  }
}

std::string DispatchService::Handle(std::string_view payload) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  Result<Request> parsed = ParseRequest(payload);
  if (!parsed.ok()) {
    return ErrorResponse(-1, 400, parsed.status().message());
  }
  return HandleParsed(*parsed);
}

std::string DispatchService::HandleParsed(const Request& req) {
  std::lock_guard<std::mutex> lock(mu_);
  // Reject mutations once a shutdown was served; reads stay available so
  // draining clients can still observe final state.
  const bool mutating = req.op == RequestOp::kSubmitRider ||
                        req.op == RequestOp::kCancelRider ||
                        req.op == RequestOp::kInjectFault ||
                        req.op == RequestOp::kTick;
  if (mutating && shutdown_.load(std::memory_order_acquire)) {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(req.id, 503, "service is shutting down");
  }
  // Stamp the injection time. Virtual clock: the request's own `time` is
  // the time (required for mutations). Steady clock: elapsed scaled wall
  // time since Start(), clamped monotone against the engine clock.
  Cost t = engine_.now();
  if (mutating) {
    if (config_.virtual_clock) {
      if (!req.has_time) {
        return ErrorResponse(
            req.id, 400,
            "this server runs a virtual clock: the request must carry "
            "\"time\"");
      }
      t = req.time;
    } else {
      t = std::max(engine_.now(), epoch_ + steady_.Now());
      if (req.op == RequestOp::kTick && req.has_time) t = req.time;
    }
  }
  switch (req.op) {
    case RequestOp::kSubmitRider: return HandleSubmit(req, t);
    case RequestOp::kCancelRider: return HandleCancel(req, t);
    case RequestOp::kQueryStatus: return HandleQuery(req);
    case RequestOp::kMetrics: return HandleMetrics(req);
    case RequestOp::kWorkload: return HandleWorkload(req);
    case RequestOp::kInjectFault: return HandleInject(req, t);
    case RequestOp::kTick: return HandleTick(req, t);
    case RequestOp::kShutdown: return HandleShutdown(req);
  }
  return ErrorResponse(req.id, 500, "unhandled op");
}

std::string DispatchService::HandleSubmit(const Request& req, Cost t) {
  const auto n = static_cast<RiderId>(engine_.instance().riders.size());
  if (req.rider < 0 || req.rider >= n) {
    return ErrorResponse(req.id, 404,
                         "unknown rider " + std::to_string(req.rider));
  }
  Result<DispatchEngine::SubmitOutcome> out = engine_.SubmitLive(req.rider, t);
  if (!out.ok()) {
    return ErrorResponse(req.id, CodeFor(out.status()),
                         out.status().message());
  }
  if (out->reject == EngineReject::kQueueFull) {
    // Admission control shed the request: the 429 of this protocol.
    if (admission_ != nullptr) admission_->CountShed(EngineReject::kQueueFull);
    JsonWriter w = Envelope(req.id, false, 429);
    w.Field("result", "rejected")
        .Field("reason", EngineRejectName(out->reject))
        .Field("queue_depth", engine_.queue_depth())
        .EndObject();
    return w.str();
  }
  JsonWriter w = Envelope(req.id, true, 200);
  if (out->assigned) {
    w.Field("result", "assigned").Field("vehicle", out->vehicle);
  } else if (out->queued) {
    w.Field("result", "queued").Field("queue_depth", engine_.queue_depth());
  } else if (out->reject != EngineReject::kNone) {
    // Dispatch-infeasible (W = 0 path): the request was served, the answer
    // is no — a 200 with the reason, not an error.
    w.Field("result", "rejected").Field("reason",
                                        EngineRejectName(out->reject));
  } else {
    w.Field("result", "done");  // e.g. expired at submit instant
  }
  w.Field("time", t).EndObject();
  return w.str();
}

std::string DispatchService::HandleCancel(const Request& req, Cost t) {
  const auto n = static_cast<RiderId>(engine_.instance().riders.size());
  if (req.rider < 0 || req.rider >= n) {
    return ErrorResponse(req.id, 404,
                         "unknown rider " + std::to_string(req.rider));
  }
  Result<bool> out = engine_.CancelLive(req.rider, t);
  if (!out.ok()) {
    return ErrorResponse(req.id, CodeFor(out.status()),
                         out.status().message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", *out ? "cancelled" : "ignored")
      .Field("time", t)
      .EndObject();
  return w.str();
}

std::string DispatchService::HandleQuery(const Request& req) {
  Result<DispatchEngine::RiderStatus> st = engine_.QueryRider(req.rider);
  if (!st.ok()) {
    return ErrorResponse(req.id, 404, st.status().message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("state", st->state)
      .Field("vehicle", st->vehicle)
      .Field("booked_utility", st->booked_utility)
      .Field("arrival_time", st->arrival_time)
      .EndObject();
  return w.str();
}

std::string DispatchService::HandleMetrics(const Request& req) {
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("now", engine_.now())
      .Field("queue_depth", engine_.queue_depth())
      .Field("finished", engine_.finished())
      .Field("requests", requests_.load(std::memory_order_relaxed))
      .Field("rejected_shutdown",
             rejected_shutdown_.load(std::memory_order_relaxed));
  if (admission_ != nullptr) {
    const RejectCounts shed = admission_->shed();
    w.Key("sessions")
        .BeginObject()
        .Field("active", admission_->active_sessions())
        .Field("peak", admission_->peak_sessions())
        .Field("total", admission_->total_sessions())
        .EndObject();
    w.Field("shed_queue_full", shed.queue_full);
  }
  // Splice the canonical engine metrics object in as-is.
  w.EndObject();
  std::string out = w.str();
  out.pop_back();  // the envelope's closing '}'
  out += ",\"metrics\":";
  out += EngineMetricsJson(engine_.metrics(), /*include_windows=*/false);
  out += '}';
  return out;
}

std::string DispatchService::HandleWorkload(const Request& req) {
  // The recorded request schedule, for replay drivers: they fetch it here
  // instead of rebuilding the world, then submit each entry at its
  // recorded time over the socket.
  JsonWriter w = Envelope(req.id, true, 200);
  w.Key("arrivals").BeginArray();
  for (const RiderArrival& a : workload_->arrivals) {
    w.BeginArray().Value(a.rider).Value(a.time).EndArray();
  }
  w.EndArray();
  w.Key("cancellations").BeginArray();
  for (const CancelRequest& c : workload_->cancellations) {
    w.BeginArray().Value(c.rider).Value(c.time).EndArray();
  }
  w.EndArray();
  w.Field("riders", static_cast<int>(engine_.instance().riders.size()))
      .Field("vehicles", static_cast<int>(engine_.instance().vehicles.size()))
      .Field("now", engine_.now())
      .EndObject();
  return w.str();
}

std::string DispatchService::HandleInject(const Request& req, Cost t) {
  Status st = Status::OK();
  if (req.fault_kind == "breakdown") {
    if (req.vehicle < 0 ||
        req.vehicle >= static_cast<int>(engine_.instance().vehicles.size())) {
      return ErrorResponse(req.id, 404,
                           "unknown vehicle " + std::to_string(req.vehicle));
    }
    st = engine_.InjectBreakdownLive(req.vehicle, t);
  } else if (req.fault_kind == "edge_disrupt") {
    st = engine_.InjectEdgeFaultLive(req.edge_a, req.edge_b, req.factor, t);
  } else {
    st = engine_.InjectEdgeRestoreLive(req.edge_a, req.edge_b, t);
  }
  if (!st.ok()) {
    return ErrorResponse(req.id, CodeFor(st), st.message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", "injected").Field("time", t).EndObject();
  return w.str();
}

std::string DispatchService::HandleTick(const Request& req, Cost t) {
  const Status st = engine_.AdvanceLive(t);
  if (!st.ok()) {
    return ErrorResponse(req.id, CodeFor(st), st.message());
  }
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", "ticked").Field("now", engine_.now()).EndObject();
  return w.str();
}

std::string DispatchService::HandleShutdown(const Request& req) {
  shutdown_.store(true, std::memory_order_release);
  JsonWriter w = Envelope(req.id, true, 200);
  w.Field("result", "shutting_down").EndObject();
  return w.str();
}

}  // namespace urr

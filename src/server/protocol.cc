#include "server/protocol.h"

#include <cstring>

#include "common/json_writer.h"

namespace urr {

std::string EncodeFrame(std::string_view payload) {
  const uint32_t n = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out += static_cast<char>((n >> 24) & 0xFF);
  out += static_cast<char>((n >> 16) & 0xFF);
  out += static_cast<char>((n >> 8) & 0xFF);
  out += static_cast<char>(n & 0xFF);
  out.append(payload);
  return out;
}

FrameReader::Next FrameReader::Poll(std::string* out) {
  if (buf_.size() < 4) return Next::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data());
  const uint32_t n = (static_cast<uint32_t>(p[0]) << 24) |
                     (static_cast<uint32_t>(p[1]) << 16) |
                     (static_cast<uint32_t>(p[2]) << 8) |
                     static_cast<uint32_t>(p[3]);
  if (n > kMaxFrameBytes) return Next::kOversized;
  if (buf_.size() < 4 + static_cast<size_t>(n)) return Next::kNeedMore;
  out->assign(buf_, 4, n);
  buf_.erase(0, 4 + static_cast<size_t>(n));
  return Next::kFrame;
}

namespace {

bool ParseOp(std::string_view name, RequestOp* op) {
  if (name == "submit_rider") *op = RequestOp::kSubmitRider;
  else if (name == "cancel_rider") *op = RequestOp::kCancelRider;
  else if (name == "query_status") *op = RequestOp::kQueryStatus;
  else if (name == "metrics") *op = RequestOp::kMetrics;
  else if (name == "workload") *op = RequestOp::kWorkload;
  else if (name == "inject_fault") *op = RequestOp::kInjectFault;
  else if (name == "tick") *op = RequestOp::kTick;
  else if (name == "shutdown") *op = RequestOp::kShutdown;
  else return false;
  return true;
}

}  // namespace

Result<Request> ParseRequest(std::string_view payload) {
  URR_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(payload));
  if (!doc.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request req;
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("request is missing a string \"op\"");
  }
  if (!ParseOp(op->as_string(), &req.op)) {
    return Status::InvalidArgument("unknown op \"" + op->as_string() + "\"");
  }
  req.id = doc.GetInt("id", -1);
  req.req_id = doc.GetInt("req_id", -1);
  if (const JsonValue* t = doc.Find("time"); t != nullptr) {
    if (!t->is_number()) {
      return Status::InvalidArgument("\"time\" must be a number");
    }
    req.has_time = true;
    req.time = t->as_number();
  }
  switch (req.op) {
    case RequestOp::kSubmitRider:
    case RequestOp::kCancelRider:
    case RequestOp::kQueryStatus: {
      const JsonValue* r = doc.Find("rider");
      if (r == nullptr || !r->is_number()) {
        return Status::InvalidArgument("\"" + op->as_string() +
                                       "\" needs a numeric \"rider\"");
      }
      req.rider = static_cast<RiderId>(r->as_number());
      break;
    }
    case RequestOp::kInjectFault: {
      req.fault_kind = doc.GetString("kind", "");
      if (req.fault_kind == "breakdown") {
        const JsonValue* v = doc.Find("vehicle");
        if (v == nullptr || !v->is_number()) {
          return Status::InvalidArgument(
              "breakdown injection needs a numeric \"vehicle\"");
        }
        req.vehicle = static_cast<int>(v->as_number());
      } else if (req.fault_kind == "edge_disrupt" ||
                 req.fault_kind == "edge_restore") {
        const JsonValue* a = doc.Find("a");
        const JsonValue* b = doc.Find("b");
        if (a == nullptr || !a->is_number() || b == nullptr ||
            !b->is_number()) {
          return Status::InvalidArgument(
              "edge-fault injection needs numeric \"a\" and \"b\"");
        }
        req.edge_a = static_cast<NodeId>(a->as_number());
        req.edge_b = static_cast<NodeId>(b->as_number());
        req.factor = doc.GetNumber("factor", 1);
      } else {
        return Status::InvalidArgument(
            "inject_fault \"kind\" must be breakdown, edge_disrupt or "
            "edge_restore");
      }
      break;
    }
    case RequestOp::kWorkload: {
      req.offset = doc.GetInt("offset", 0);
      req.limit = doc.GetInt("limit", 0);
      if (req.offset < 0 || req.limit < 0) {
        return Status::InvalidArgument(
            "workload \"offset\" and \"limit\" must be non-negative");
      }
      break;
    }
    default:
      break;
  }
  return req;
}

std::string SerializeRequest(const Request& req, double time) {
  JsonWriter w;
  w.BeginObject();
  const char* op = "metrics";
  switch (req.op) {
    case RequestOp::kSubmitRider: op = "submit_rider"; break;
    case RequestOp::kCancelRider: op = "cancel_rider"; break;
    case RequestOp::kQueryStatus: op = "query_status"; break;
    case RequestOp::kMetrics: op = "metrics"; break;
    case RequestOp::kWorkload: op = "workload"; break;
    case RequestOp::kInjectFault: op = "inject_fault"; break;
    case RequestOp::kTick: op = "tick"; break;
    case RequestOp::kShutdown: op = "shutdown"; break;
  }
  w.Field("op", op).Field("id", req.id).Field("req_id", req.req_id);
  switch (req.op) {
    case RequestOp::kSubmitRider:
    case RequestOp::kCancelRider:
    case RequestOp::kQueryStatus:
      w.Field("rider", req.rider);
      break;
    case RequestOp::kInjectFault:
      w.Field("kind", req.fault_kind);
      if (req.fault_kind == "breakdown") {
        w.Field("vehicle", req.vehicle);
      } else {
        w.Field("a", req.edge_a).Field("b", req.edge_b);
        if (req.fault_kind == "edge_disrupt") w.Field("factor", req.factor);
      }
      break;
    default:
      break;
  }
  w.Field("time", time).EndObject();
  return w.str();
}

std::string ErrorResponse(int64_t id, int code, std::string_view error) {
  JsonWriter w;
  w.BeginObject()
      .Field("id", static_cast<int64_t>(id))
      .Field("ok", false)
      .Field("code", code)
      .Field("error", error)
      .EndObject();
  return w.str();
}

}  // namespace urr

// Wire protocol of the dispatch service (DESIGN.md §12).
//
// Framing: every message — request and response — is one frame:
//
//   +----------------+---------------------+
//   | u32 length (BE) | UTF-8 JSON payload |
//   +----------------+---------------------+
//
// The 4-byte big-endian length counts the payload only. Frames larger than
// kMaxFrameBytes are a protocol violation: the receiver answers with a 400
// response and closes (it cannot resync past a length it refuses to read).
// Length-prefixed framing over newline-delimited JSON because payloads may
// legitimately contain newlines (error strings, future blobs) and a binary
// prefix makes truncation detection exact.
//
// Requests are JSON objects: {"op": "...", "id": n, ...op fields}. The `id`
// is an optional client correlation number echoed verbatim in the response.
// Mutating requests may also carry "req_id", an idempotency key: the
// service remembers the response of each executed req_id (bounded window)
// and answers a retry with the cached response instead of mutating twice.
// Operations:
//
//   submit_rider  {rider, time?}          → {result: queued|assigned|
//                                            rejected, vehicle?, reason?}
//   cancel_rider  {rider, time?}          → {result: cancelled|ignored}
//   query_status  {rider}                 → {state, vehicle, booked_utility,
//                                            arrival_time}
//   metrics       {}                      → {metrics: {...EngineMetricsJson},
//                                            queue_depth, now, sessions}
//   workload      {offset?, limit?}       → {arrivals: [[rider,time]...],
//                                            cancellations: [[rider,time]...],
//                                            arrivals_total,
//                                            cancellations_total}
//                                           offset/limit (limit 0 = all)
//                                           window each list independently,
//                                           so a workload too large for one
//                                           frame is fetched in pages
//   inject_fault  {kind, time?, vehicle | a, b, factor}
//   tick          {time?}                 → advances the engine clock
//   shutdown      {}                      → {result: shutting_down}; the
//                                           server drains and exits
//
// `time` is required under a virtual clock and ignored under a steady
// clock (the server stamps its own). Responses carry {"id", "ok", "code"}
// plus op fields; codes follow the HTTP idiom: 200 ok, 400 malformed
// request, 404 unknown rider/vehicle, 409 duplicate submission, 429
// admission-control rejection (queue full), 500 internal error, 503
// shutting down. A dispatch-infeasible rejection (no vehicle fits) is NOT
// an error: it is a 200 with result:"rejected" and a reason — the request
// was served, the answer was no.
#ifndef URR_SERVER_PROTOCOL_H_
#define URR_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/json_parser.h"
#include "graph/road_network.h"
#include "sched/transfer_sequence.h"

namespace urr {

/// Hard ceiling on one frame's payload (1 MiB). Far above any legitimate
/// request; a length beyond it is treated as a protocol violation.
constexpr uint32_t kMaxFrameBytes = 1u << 20;

/// Prepends the 4-byte big-endian length to `payload`.
std::string EncodeFrame(std::string_view payload);

/// Incremental frame decoder for one connection: feed raw bytes as they
/// arrive, poll complete payloads out. Tolerates frames split across any
/// read boundary (including inside the length prefix).
class FrameReader {
 public:
  enum class Next : uint8_t {
    kFrame,     // *out filled with one complete payload
    kNeedMore,  // no complete frame buffered yet
    kOversized, // declared length exceeds kMaxFrameBytes; connection is dead
  };

  void Feed(const char* data, size_t n) { buf_.append(data, n); }
  Next Poll(std::string* out);

  /// Bytes buffered but not yet returned (nonzero at EOF = truncated frame).
  size_t pending_bytes() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Request operations (see the file comment for payloads).
enum class RequestOp : uint8_t {
  kSubmitRider,
  kCancelRider,
  kQueryStatus,
  kMetrics,
  kWorkload,
  kInjectFault,
  kTick,
  kShutdown,
};

/// One parsed request.
struct Request {
  RequestOp op = RequestOp::kMetrics;
  int64_t id = -1;          // client correlation id; -1 = absent
  /// Idempotency key; -1 = absent. A mutating request carrying a
  /// non-negative req_id is deduplicated by the service: a retry after an
  /// ambiguous failure (timeout, dropped connection) returns the cached
  /// response of the first execution instead of mutating twice.
  int64_t req_id = -1;
  RiderId rider = -1;
  bool has_time = false;
  double time = 0;
  // inject_fault payload.
  std::string fault_kind;   // "breakdown" | "edge_disrupt" | "edge_restore"
  int vehicle = -1;
  NodeId edge_a = -1;
  NodeId edge_b = -1;
  double factor = 1;
  // workload paging: the [offset, offset+limit) window of each recorded
  // list; limit 0 = everything (only safe for small workloads).
  int64_t offset = 0;
  int64_t limit = 0;
};

/// Parses one request payload. InvalidArgument on malformed JSON, a missing
/// or unknown "op", or op-specific fields of the wrong type.
Result<Request> ParseRequest(std::string_view payload);

/// Canonical serialization of a mutating request for the write-ahead
/// journal: the request's own fields plus the service-stamped injection
/// time `time` (so a steady-clock run replays deterministically).
/// ParseRequest(SerializeRequest(req, t)) round-trips every field the
/// dispatch path reads.
std::string SerializeRequest(const Request& req, double time);

/// Canonical error response: {"id", "ok": false, "code", "error"}.
std::string ErrorResponse(int64_t id, int code, std::string_view error);

}  // namespace urr

#endif  // URR_SERVER_PROTOCOL_H_

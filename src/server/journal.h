// Crash-safety plumbing of the dispatch service (DESIGN.md §15): the
// write-ahead request journal, the service checkpoint files it pairs with,
// and the idempotency (dedup) cache.
//
// Journal record framing reuses the wire protocol's length prefix and adds
// a per-record checksum:
//
//   +-----------------+-------------------+--------------------+
//   | u32 length (BE) | u64 FNV-1a-64 (LE)| UTF-8 JSON payload |
//   +-----------------+-------------------+--------------------+
//
// The length counts the payload only (same rule as protocol.h frames); the
// checksum covers the payload bytes. Records are appended before the
// request is applied to the engine (write-ahead discipline) and fdatasync'd
// by default, so every response the server ever sent is backed by a durable
// record. A torn tail — a partial header, a partial payload, or a payload
// failing its checksum — marks the end of the valid prefix: ScanJournal
// reports it with a precise Status and recovery truncates to the prefix,
// never crashes, never replays past it.
//
// Service checkpoints wrap the engine's urrckpt snapshot (engine/checkpoint
// .cc) with the journal position it corresponds to and the dedup window
// contents, under a whole-file checksum. Files are written atomically
// (tmp + fsync + rename) to `ckpt-<seq>` so a crash mid-checkpoint leaves
// the previous checkpoint intact; recovery loads the newest file that
// validates and replays the journal suffix past its seq.
#ifndef URR_SERVER_JOURNAL_H_
#define URR_SERVER_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace urr {

/// Encodes one journal record (length prefix + checksum + payload).
std::string EncodeJournalRecord(std::string_view payload);

/// Append handle over one journal file. Move-only; closes on destruction.
class RequestJournal {
 public:
  /// Opens `path` for appending (creating it if absent). `fsync` = false
  /// trades durability of the last few records for throughput (the OS
  /// still sees every write; only a machine crash can lose them).
  static Result<RequestJournal> Open(const std::string& path, bool fsync);

  RequestJournal(RequestJournal&& o) noexcept
      : fd_(o.fd_), fsync_(o.fsync_), appended_(o.appended_) {
    o.fd_ = -1;
  }
  RequestJournal& operator=(RequestJournal&& o) noexcept;
  RequestJournal(const RequestJournal&) = delete;
  RequestJournal& operator=(const RequestJournal&) = delete;
  ~RequestJournal() { Close(); }

  /// Appends one record and (by default) fdatasyncs it. IOError on any
  /// short write — the journal is then in an unknown state and the caller
  /// must stop accepting mutations.
  Status Append(std::string_view payload);

  void Close();
  int64_t appended() const { return appended_; }

 private:
  RequestJournal(int fd, bool fsync) : fd_(fd), fsync_(fsync) {}
  int fd_ = -1;
  bool fsync_ = true;
  int64_t appended_ = 0;
};

/// Result of scanning a journal file front to back.
struct JournalScan {
  std::vector<std::string> payloads;  // records of the valid prefix
  uint64_t valid_bytes = 0;           // byte length of the valid prefix
  uint64_t file_bytes = 0;            // total file size
  /// OK when the file ends exactly on a record boundary; otherwise the
  /// precise description of the torn/corrupt tail (truncated header,
  /// truncated payload, implausible length, checksum mismatch).
  Status tail;
};

/// Scans `path`, verifying every record checksum. Only the tail can be
/// damaged without failing the whole scan: a bad record ends the valid
/// prefix and everything before it is returned. A missing file scans as
/// empty (fresh journal). IOError only for unreadable files.
Result<JournalScan> ScanJournal(const std::string& path);

/// Truncates `path` to `valid_bytes` — the recovery step that drops a torn
/// tail before the journal is reopened for appending.
Status TruncateJournal(const std::string& path, uint64_t valid_bytes);

/// One loaded service checkpoint.
struct ServiceCheckpoint {
  int64_t seq = 0;  // journal records applied when the snapshot was taken
  /// Dedup window contents at the snapshot: (req_id, cached response).
  std::vector<std::pair<int64_t, std::string>> dedup;
  std::string engine_checkpoint;  // urrckpt text (engine/checkpoint.cc)
};

/// Writes `ckpt` atomically to `<dir>/ckpt-<seq>` (tmp + fsync + rename).
Status WriteServiceCheckpoint(const std::string& dir,
                              const ServiceCheckpoint& ckpt);

/// Parses and validates one checkpoint file (whole-file checksum, counts).
Result<ServiceCheckpoint> ReadServiceCheckpoint(const std::string& path);

/// Checkpoint files in `dir` as (seq, path), newest (highest seq) first.
Result<std::vector<std::pair<int64_t, std::string>>> ListServiceCheckpoints(
    const std::string& dir);

/// Bounded idempotency window: req_id → the response of its first
/// execution, FIFO-evicted at `capacity`. The window must be generously
/// larger than the deepest plausible retry horizon (a client only retries
/// its most recent requests); at the default 64k entries a duplicate
/// outside the window would have to arrive tens of thousands of requests
/// late.
class DedupCache {
 public:
  explicit DedupCache(int capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  /// The cached response, or nullptr when req_id was never seen (or has
  /// been evicted).
  const std::string* Lookup(int64_t req_id) const;
  void Insert(int64_t req_id, std::string response);

  /// Snapshot in insertion (eviction) order, for checkpointing.
  std::vector<std::pair<int64_t, std::string>> Entries() const;
  int64_t size() const { return static_cast<int64_t>(order_.size()); }

 private:
  int capacity_;
  std::deque<int64_t> order_;
  std::unordered_map<int64_t, std::string> map_;
};

}  // namespace urr

#endif  // URR_SERVER_JOURNAL_H_

// The dispatch service: one live DispatchEngine session behind the wire
// protocol (server/protocol.h). Transport-agnostic — the socket server
// (server/server.h) and the in-process benchmarks both drive it through
// Handle(payload) → response payload.
//
// Threading: Handle() is safe to call from any number of session threads.
// One mutex serializes engine access (window solves still parallelize
// internally through the SolverContext's thread pool); the same mutex
// orders clock reads, which makes steady-clock time stamps monotone across
// connections — exactly the engine's live-injection contract.
//
// Determinism: under a virtual clock (every request carries its `time`),
// the service is a pure funnel into the engine's (time, rank, seq) queue.
// Serving a recorded workload through it — same times, same rank order —
// produces an event log byte-identical to DispatchEngine::Run() on that
// workload. The server smoke test and tests/server_test.cc hold this.
#ifndef URR_SERVER_DISPATCH_SERVICE_H_
#define URR_SERVER_DISPATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "engine/clock_source.h"
#include "engine/engine.h"
#include "server/admission.h"
#include "server/protocol.h"

namespace urr {

struct ServiceConfig {
  /// true: requests carry their own `time` (deterministic replay mode).
  /// false: the service stamps elapsed wall seconds × timescale.
  bool virtual_clock = true;
  /// Steady-clock mode: simulated seconds per real second.
  double timescale = 1.0;
};

class DispatchService {
 public:
  /// Borrows everything; `admission` may be null (no session accounting in
  /// the metrics response).
  DispatchService(const StreamingWorkload* workload, SolverContext* ctx,
                  const EngineConfig& engine_config,
                  const ServiceConfig& config,
                  AdmissionController* admission);

  /// Opens the live engine session and starts the clock. Call once.
  Status Start();

  /// Handles one request payload and returns the response payload.
  /// Never throws and never returns an empty string: malformed requests
  /// get a 400 response, internal failures a 500.
  std::string Handle(std::string_view payload);

  /// Closes the live session (drains the fleet, finalizes metrics).
  /// Idempotent; called by the server after the last session ends.
  Status Finish();

  /// Set once a shutdown request was served; the server stops accepting.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Post-Finish access for differential tests and the --log flag.
  std::string SerializedLog();
  std::string MetricsJson();
  const DispatchEngine& engine() const { return engine_; }

 private:
  std::string HandleParsed(const Request& req);
  std::string HandleSubmit(const Request& req, Cost t);
  std::string HandleCancel(const Request& req, Cost t);
  std::string HandleQuery(const Request& req);
  std::string HandleMetrics(const Request& req);
  std::string HandleWorkload(const Request& req);
  std::string HandleInject(const Request& req, Cost t);
  std::string HandleTick(const Request& req, Cost t);
  std::string HandleShutdown(const Request& req);
  /// Maps an engine Status to the protocol's HTTP-style code.
  static int CodeFor(const Status& status);

  const StreamingWorkload* workload_;
  ServiceConfig config_;
  AdmissionController* admission_;
  DispatchEngine engine_;
  SteadyClock steady_;
  Cost epoch_ = 0;  // engine clock at Start(); steady time is added to it
  std::mutex mu_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> rejected_shutdown_{0};  // 503s after shutdown
};

}  // namespace urr

#endif  // URR_SERVER_DISPATCH_SERVICE_H_

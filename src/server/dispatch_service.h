// The dispatch service: one live DispatchEngine session behind the wire
// protocol (server/protocol.h). Transport-agnostic — the socket server
// (server/server.h) and the in-process benchmarks both drive it through
// Handle(payload) → response payload.
//
// Threading: Handle() is safe to call from any number of session threads.
// One mutex serializes engine access (window solves still parallelize
// internally through the SolverContext's thread pool); the same mutex
// orders clock reads, which makes steady-clock time stamps monotone across
// connections — exactly the engine's live-injection contract.
//
// Determinism: under a virtual clock (every request carries its `time`),
// the service is a pure funnel into the engine's (time, rank, seq) queue.
// Serving a recorded workload through it — same times, same rank order —
// produces an event log byte-identical to DispatchEngine::Run() on that
// workload. The server smoke test and tests/server_test.cc hold this.
//
// Crash safety (DESIGN.md §15): with a journal directory configured, every
// mutating request is serialized (with its stamped time) and appended to a
// checksummed write-ahead journal before it reaches the engine, and the
// engine is checkpointed on a journaled-mutation cadence. Start() with
// config.recover restores the latest valid checkpoint and replays the
// journal suffix through the same dispatch path, reproducing the exact
// pre-crash engine state — event log, SolutionFingerprint, dedup window —
// because dispatch is deterministic in (request, time) order. Requests
// carrying a `req_id` are idempotent: the response of the first execution
// is cached and returned to retries, so a client that timed out or lost
// its connection can safely resend.
#ifndef URR_SERVER_DISPATCH_SERVICE_H_
#define URR_SERVER_DISPATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "engine/clock_source.h"
#include "engine/engine.h"
#include "server/admission.h"
#include "server/journal.h"
#include "server/protocol.h"

namespace urr {

struct ServiceConfig {
  /// true: requests carry their own `time` (deterministic replay mode).
  /// false: the service stamps elapsed wall seconds × timescale.
  bool virtual_clock = true;
  /// Steady-clock mode: simulated seconds per real second.
  double timescale = 1.0;
  /// Crash safety (DESIGN.md §15). Non-empty: every mutating request is
  /// appended to <journal_dir>/journal.wal (write-ahead, checksummed,
  /// fsync'd) before it touches the engine, and a service checkpoint
  /// (engine snapshot + journal position + dedup window) is written every
  /// `checkpoint_every` journaled mutations. Empty: no persistence.
  std::string journal_dir;
  /// Start() recovers from journal_dir — latest valid checkpoint, then a
  /// replay of the journal suffix — instead of requiring a fresh
  /// directory. The recovered run continues the event log byte-exactly.
  bool recover = false;
  /// Journaled mutations between service checkpoints (0 = journal only,
  /// recovery then replays from the start).
  int checkpoint_every = 256;
  /// fdatasync every journal record (default). Off keeps the write-ahead
  /// ordering but lets an OS crash lose the last few records.
  bool journal_fsync = true;
  /// Idempotency window: cached responses kept for dedup, FIFO-evicted.
  int dedup_window = 1 << 16;
};

class DispatchService {
 public:
  /// Borrows everything; `admission` may be null (no session accounting in
  /// the metrics response).
  DispatchService(const StreamingWorkload* workload, SolverContext* ctx,
                  const EngineConfig& engine_config,
                  const ServiceConfig& config,
                  AdmissionController* admission);

  /// Opens the live engine session and starts the clock. Call once. With
  /// config.journal_dir set this also opens (or, with config.recover,
  /// recovers from) the write-ahead journal: the latest valid checkpoint
  /// is restored, a torn journal tail is truncated with its Status kept
  /// for the metrics report, and the surviving journal suffix is replayed
  /// into the engine before the first request is accepted.
  Status Start();

  /// Handles one request payload and returns the response payload.
  /// Never throws and never returns an empty string: malformed requests
  /// get a 400 response, internal failures a 500.
  std::string Handle(std::string_view payload);

  /// Closes the live session (drains the fleet, finalizes metrics).
  /// Idempotent; called by the server after the last session ends.
  Status Finish();

  /// Set once a shutdown request was served; the server stops accepting.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Post-Finish access for differential tests and the --log flag.
  std::string SerializedLog();
  std::string MetricsJson();
  const DispatchEngine& engine() const { return engine_; }

  /// Recovery summary (valid after Start()): journaled mutations applied
  /// so far, and how the session began.
  int64_t journal_records() const { return journal_seq_; }
  int64_t recovered_replayed() const { return recovered_replayed_; }
  int64_t dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }

 private:
  std::string HandleParsed(const Request& req);
  /// The journaling wrapper around every mutating op: dedup lookup →
  /// write-ahead append → dispatch → dedup insert → checkpoint cadence.
  std::string HandleMutating(const Request& req, Cost t);
  /// Pure dispatch of one mutating op at time `t` (no journaling) — the
  /// shared path of live handling and recovery replay.
  std::string DispatchMutating(const Request& req, Cost t);
  Status RecoverLocked();
  Status StartFreshJournalLocked();
  void MaybeCheckpointLocked();
  std::string HandleSubmit(const Request& req, Cost t);
  std::string HandleCancel(const Request& req, Cost t);
  std::string HandleQuery(const Request& req);
  std::string HandleMetrics(const Request& req);
  std::string HandleWorkload(const Request& req);
  std::string HandleInject(const Request& req, Cost t);
  std::string HandleTick(const Request& req, Cost t);
  std::string HandleShutdown(const Request& req);
  /// Maps an engine Status to the protocol's HTTP-style code.
  static int CodeFor(const Status& status);

  const StreamingWorkload* workload_;
  ServiceConfig config_;
  AdmissionController* admission_;
  DispatchEngine engine_;
  SteadyClock steady_;
  Cost epoch_ = 0;  // engine clock at Start(); steady time is added to it
  std::mutex mu_;
  std::atomic<bool> shutdown_{false};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> rejected_shutdown_{0};  // 503s after shutdown

  // Crash safety (all engine-state fields below are guarded by mu_).
  std::optional<RequestJournal> journal_;
  DedupCache dedup_;
  int64_t journal_seq_ = 0;           // journaled mutations applied
  int64_t last_checkpoint_seq_ = 0;   // journal_seq_ at the last checkpoint
  std::atomic<int64_t> dedup_hits_{0};
  Status journal_fault_;      // sticky: a failed append stops mutations
  Status checkpoint_fault_;   // last failed checkpoint write (non-fatal)
  bool recovered_ = false;
  int64_t recovered_checkpoint_seq_ = -1;  // -1 = replayed from scratch
  int64_t recovered_replayed_ = 0;         // journal records replayed
  std::string recovery_note_;  // torn-tail Status, kept for observability
};

}  // namespace urr

#endif  // URR_SERVER_DISPATCH_SERVICE_H_

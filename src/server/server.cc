#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/protocol.h"

namespace urr {

namespace {

/// write() the whole buffer, riding out EINTR and partial writes.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away mid-response
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

DispatchServer::DispatchServer(DispatchService* service,
                               AdmissionController* admission,
                               ServerConfig config)
    : service_(service), admission_(admission), config_(std::move(config)) {}

DispatchServer::~DispatchServer() { Stop(); }

Status DispatchServer::Start() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  if (config_.port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError("bind 127.0.0.1:" + std::to_string(config_.port) +
                             ": " + std::strerror(errno));
    }
    if (::listen(tcp_fd_, config_.backlog) != 0) {
      return Status::IOError("listen: " + std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      port_ = ntohs(addr.sin_port);
    }
  }
  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     config_.unix_path);
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      return Status::IOError("socket(AF_UNIX): " +
                             std::string(std::strerror(errno)));
    }
    ::unlink(config_.unix_path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError("bind " + config_.unix_path + ": " +
                             std::strerror(errno));
    }
    if (::listen(unix_fd_, config_.backlog) != 0) {
      return Status::IOError("listen(unix): " +
                             std::string(std::strerror(errno)));
    }
  }
  if (tcp_fd_ < 0 && unix_fd_ < 0) {
    return Status::InvalidArgument(
        "server needs a TCP port or a unix socket path");
  }
  listener_ = std::thread([this] { ListenLoop(); });
  return Status::OK();
}

void DispatchServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Backpressure: take the session slot BEFORE accept. While the service
    // is saturated, pending connections queue in the kernel backlog — the
    // server never owns a socket it cannot serve.
    if (!admission_->AcquireSession()) break;
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    int tcp_slot = -1, unix_slot = -1;
    if (tcp_fd_ >= 0) {
      tcp_slot = static_cast<int>(n);
      fds[n++] = {tcp_fd_, POLLIN, 0};
    }
    if (unix_fd_ >= 0) {
      unix_slot = static_cast<int>(n);
      fds[n++] = {unix_fd_, POLLIN, 0};
    }
    int accepted = -1;
    while (accepted < 0) {
      const int rc = ::poll(fds, n, -1);
      if (stopping_.load(std::memory_order_acquire)) break;
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (tcp_slot >= 0 && (fds[tcp_slot].revents & POLLIN) != 0) {
        accepted = ::accept(tcp_fd_, nullptr, nullptr);
      } else if (unix_slot >= 0 && (fds[unix_slot].revents & POLLIN) != 0) {
        accepted = ::accept(unix_fd_, nullptr, nullptr);
      } else if ((fds[0].revents & POLLIN) != 0) {
        break;  // woken by Stop()
      }
      if (accepted < 0 && (errno == EINTR || errno == ECONNABORTED)) {
        accepted = -1;
        continue;
      }
      break;
    }
    if (accepted < 0) {
      admission_->ReleaseSession();
      if (stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_fds_.push_back(accepted);
    sessions_.emplace_back([this, accepted] { SessionLoop(accepted); });
  }
}

void DispatchServer::SessionLoop(int fd) {
  FrameReader reader;
  char buf[4096];
  std::string payload;
  bool alive = true;
  while (alive) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF (clean close or mid-request disconnect)
    reader.Feed(buf, static_cast<size_t>(r));
    for (;;) {
      const FrameReader::Next next = reader.Poll(&payload);
      if (next == FrameReader::Next::kNeedMore) break;
      if (next == FrameReader::Next::kOversized) {
        // The declared length is beyond the protocol cap: answer precisely,
        // then close — there is no way to resync past a frame that will
        // never be read.
        const std::string resp = EncodeFrame(ErrorResponse(
            -1, 400,
            "frame exceeds the " + std::to_string(kMaxFrameBytes) +
                "-byte limit"));
        WriteAll(fd, resp.data(), resp.size());
        alive = false;
        break;
      }
      const std::string resp = EncodeFrame(service_->Handle(payload));
      if (!WriteAll(fd, resp.data(), resp.size())) {
        alive = false;
        break;
      }
      if (service_->shutdown_requested()) {
        // The shutdown response is on the wire; wake the listener so
        // Wait() returns and the owner runs the graceful Stop() (which
        // joins this thread — it cannot run from inside it).
        SignalStop();
        alive = false;
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (int& sfd : session_fds_) {
      if (sfd == fd) {
        sfd = -1;
        break;
      }
    }
  }
  ::close(fd);
  admission_->ReleaseSession();
}

void DispatchServer::SignalStop() {
  stopping_.store(true, std::memory_order_release);
  admission_->Close();  // unblock AcquireSession
  if (wake_pipe_[1] >= 0) {
    const char one = 1;
    (void)!::write(wake_pipe_[1], &one, 1);  // unblock poll
  }
}

void DispatchServer::CloseListeners() {
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(config_.unix_path.c_str());
  }
}

void DispatchServer::UnblockSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (int sfd : session_fds_) {
    if (sfd >= 0) ::shutdown(sfd, SHUT_RD);
  }
}

void DispatchServer::Wait() {
  std::lock_guard<std::mutex> lock(listener_mu_);
  if (listener_.joinable()) listener_.join();
}

Status DispatchServer::Stop() {
  if (stopped_.exchange(true)) return Status::OK();
  SignalStop();
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    if (listener_.joinable()) listener_.join();
  }
  CloseListeners();
  // Sessions blocked in read() return 0 after SHUT_RD; in-flight requests
  // finish their response first because the shutdown only touches the read
  // side.
  UnblockSessions();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (std::thread& t : sessions) {
    if (t.joinable()) t.join();
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  return service_->Finish();
}

}  // namespace urr

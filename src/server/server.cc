#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "server/protocol.h"

namespace urr {

namespace {

/// send() the whole buffer, riding out EINTR and partial writes.
/// MSG_NOSIGNAL: a client that disconnects with a response still pending
/// must yield EPIPE here, not a process-killing SIGPIPE.
bool WriteAll(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    const ssize_t w = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;  // peer went away mid-response
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

}  // namespace

DispatchServer::DispatchServer(DispatchService* service,
                               AdmissionController* admission,
                               ServerConfig config)
    : service_(service), admission_(admission), config_(std::move(config)) {}

DispatchServer::~DispatchServer() { Stop(); }

Status DispatchServer::Start() {
  if (::pipe(wake_pipe_) != 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  if (config_.port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(config_.port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError("bind 127.0.0.1:" + std::to_string(config_.port) +
                             ": " + std::strerror(errno));
    }
    if (::listen(tcp_fd_, config_.backlog) != 0) {
      return Status::IOError("listen: " + std::string(std::strerror(errno)));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
        0) {
      port_ = ntohs(addr.sin_port);
    }
  }
  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    if (config_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     config_.unix_path);
    }
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) {
      return Status::IOError("socket(AF_UNIX): " +
                             std::string(std::strerror(errno)));
    }
    ::unlink(config_.unix_path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return Status::IOError("bind " + config_.unix_path + ": " +
                             std::strerror(errno));
    }
    if (::listen(unix_fd_, config_.backlog) != 0) {
      return Status::IOError("listen(unix): " +
                             std::string(std::strerror(errno)));
    }
  }
  if (tcp_fd_ < 0 && unix_fd_ < 0) {
    return Status::InvalidArgument(
        "server needs a TCP port or a unix socket path");
  }
  listener_ = std::thread([this] { ListenLoop(); });
  return Status::OK();
}

void DispatchServer::ListenLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    // Backpressure: take the session slot BEFORE accept. While the service
    // is saturated, pending connections queue in the kernel backlog — the
    // server never owns a socket it cannot serve.
    if (!admission_->AcquireSession()) break;
    pollfd fds[3];
    nfds_t n = 0;
    fds[n++] = {wake_pipe_[0], POLLIN, 0};
    int tcp_slot = -1, unix_slot = -1;
    if (tcp_fd_ >= 0) {
      tcp_slot = static_cast<int>(n);
      fds[n++] = {tcp_fd_, POLLIN, 0};
    }
    if (unix_fd_ >= 0) {
      unix_slot = static_cast<int>(n);
      fds[n++] = {unix_fd_, POLLIN, 0};
    }
    int accepted = -1;
    bool listener_dead = false;
    while (accepted < 0) {
      const int rc = ::poll(fds, n, -1);
      if (stopping_.load(std::memory_order_acquire)) break;
      if (rc < 0) {
        if (errno == EINTR) continue;
        listener_dead = true;
        break;
      }
      if ((fds[0].revents & POLLIN) != 0) break;  // woken by Stop()
      // POLLERR/POLLHUP on a listening socket means it is gone for good —
      // checked explicitly so control never reaches an errno test with a
      // stale value from an earlier syscall.
      int listen_fd = -1;
      if (tcp_slot >= 0 && (fds[tcp_slot].revents & POLLIN) != 0) {
        listen_fd = tcp_fd_;
      } else if (unix_slot >= 0 && (fds[unix_slot].revents & POLLIN) != 0) {
        listen_fd = unix_fd_;
      } else if ((tcp_slot >= 0 &&
                  (fds[tcp_slot].revents & (POLLERR | POLLHUP)) != 0) ||
                 (unix_slot >= 0 &&
                  (fds[unix_slot].revents & (POLLERR | POLLHUP)) != 0)) {
        listener_dead = true;
        break;
      } else {
        continue;  // spurious wakeup, nothing readable
      }
      accepted = ::accept(listen_fd, nullptr, nullptr);
      if (accepted < 0) {
        // errno is inspected only here, directly after the failed accept.
        if (errno == EINTR || errno == ECONNABORTED) continue;
        // Transient resource exhaustion (EMFILE & co): back off briefly
        // instead of spinning on a level-triggered POLLIN.
        ::poll(nullptr, 0, 10);
        break;
      }
    }
    if (accepted < 0) {
      admission_->ReleaseSession();
      if (listener_dead || stopping_.load(std::memory_order_acquire)) break;
      continue;
    }
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ReapSessionsLocked();
    sessions_.push_back(std::make_unique<Session>());
    Session* session = sessions_.back().get();
    session->fd = accepted;
    session->thread = std::thread([this, session] { SessionLoop(session); });
  }
}

void DispatchServer::SessionLoop(Session* session) {
  const int fd = session->fd;  // set before the thread started
  FrameReader reader;
  char buf[4096];
  std::string payload;
  bool alive = true;
  while (alive) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // EOF (clean close or mid-request disconnect)
    reader.Feed(buf, static_cast<size_t>(r));
    for (;;) {
      const FrameReader::Next next = reader.Poll(&payload);
      if (next == FrameReader::Next::kNeedMore) break;
      if (next == FrameReader::Next::kOversized) {
        // The declared length is beyond the protocol cap: answer precisely,
        // then close — there is no way to resync past a frame that will
        // never be read.
        const std::string resp = EncodeFrame(ErrorResponse(
            -1, 400,
            "frame exceeds the " + std::to_string(kMaxFrameBytes) +
                "-byte limit"));
        WriteAll(fd, resp.data(), resp.size());
        alive = false;
        break;
      }
      const std::string resp = EncodeFrame(service_->Handle(payload));
      if (!WriteAll(fd, resp.data(), resp.size())) {
        alive = false;
        break;
      }
      if (service_->shutdown_requested()) {
        // The shutdown response is on the wire; wake the listener so
        // Wait() returns and the owner runs the graceful Stop() (which
        // joins this thread — it cannot run from inside it).
        SignalStop();
        alive = false;
        break;
      }
    }
  }
  {
    // Take the fd back under the mutex so UnblockSessions never touches a
    // closed (and possibly reused) descriptor.
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session->fd = -1;
  }
  ::close(fd);
  admission_->ReleaseSession();
  // Last store: after this the reaper may join the thread and destroy
  // *session.
  session->done.store(true, std::memory_order_release);
}

void DispatchServer::ReapSessionsLocked() {
  auto it = sessions_.begin();
  while (it != sessions_.end()) {
    Session& session = **it;
    if (session.done.load(std::memory_order_acquire)) {
      if (session.thread.joinable()) session.thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t DispatchServer::tracked_sessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

void DispatchServer::SignalStop() {
  stopping_.store(true, std::memory_order_release);
  admission_->Close();  // unblock AcquireSession
  if (wake_pipe_[1] >= 0) {
    const char one = 1;
    (void)!::write(wake_pipe_[1], &one, 1);  // unblock poll
  }
}

void DispatchServer::CloseListeners() {
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
    ::unlink(config_.unix_path.c_str());
  }
}

void DispatchServer::UnblockSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const std::unique_ptr<Session>& session : sessions_) {
    // SHUT_RDWR, not SHUT_RD: a session blocked in WriteAll because the
    // client stopped reading (send buffer full) must also be unblocked,
    // or joining it would hang Stop() forever. Writers fail with EPIPE,
    // which WriteAll already treats as a dead peer.
    if (session->fd >= 0) ::shutdown(session->fd, SHUT_RDWR);
  }
}

void DispatchServer::Wait() {
  std::lock_guard<std::mutex> lock(listener_mu_);
  if (listener_.joinable()) listener_.join();
}

Status DispatchServer::Stop() {
  if (stopped_.exchange(true)) return Status::OK();
  SignalStop();
  {
    std::lock_guard<std::mutex> lock(listener_mu_);
    if (listener_.joinable()) listener_.join();
  }
  CloseListeners();
  // Sessions blocked in read() return 0, sessions blocked in a write to a
  // full send buffer fail with EPIPE — both exit their loop cleanly.
  UnblockSessions();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions.swap(sessions_);
  }
  for (const std::unique_ptr<Session>& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
  return service_->Finish();
}

}  // namespace urr

// The socket front end of the dispatch service: a long-lived server that
// accepts length-prefixed JSON frames (server/protocol.h) over a loopback
// TCP socket and/or a Unix-domain socket, and funnels every request through
// one DispatchService.
//
// Shape: one listener thread multiplexes the listening sockets with
// poll(); each accepted connection gets a session thread that loops
// read → FrameReader → DispatchService::Handle → write. Session slots come
// from the AdmissionController — when all are taken the listener simply
// stops accepting (backpressure: excess connections wait in the kernel
// backlog), it never accepts a connection it cannot serve.
//
// Session threads that finish on their own (client closed, protocol
// error) are reaped opportunistically by the listener before the next
// accept, so a long-lived server churning through short connections never
// accumulates exited-but-unjoined threads.
//
// Shutdown (either a `shutdown` request or Stop()): the listener closes
// the listening sockets, shutdown(SHUT_RDWR)s every active session so
// both blocked reads *and* blocked writes (a client that stopped reading)
// return, joins all session threads, and closes the live engine session
// (DispatchService::Finish), which drains the fleet exactly like the tail
// of a batch run.
#ifndef URR_SERVER_SERVER_H_
#define URR_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/admission.h"
#include "server/dispatch_service.h"

namespace urr {

struct ServerConfig {
  /// TCP: listen on 127.0.0.1:port. port = 0 picks an ephemeral port
  /// (resolved port available from port() after Start()); port < 0 disables
  /// TCP entirely.
  int port = 0;
  /// Unix-domain socket path; empty disables. An existing socket file at
  /// the path is replaced.
  std::string unix_path;
  /// Listen backlog (the backpressure buffer while sessions are maxed out).
  int backlog = 64;
};

class DispatchServer {
 public:
  /// Borrows the service and the admission controller (both must outlive
  /// Stop()).
  DispatchServer(DispatchService* service, AdmissionController* admission,
                 ServerConfig config);
  ~DispatchServer();

  /// Binds + listens + starts the listener thread. IOError on bind/listen
  /// failure.
  Status Start();

  /// The resolved TCP port (after Start(); 0 when TCP is disabled).
  int port() const { return port_; }

  /// Sessions currently tracked: live ones plus exited ones the listener
  /// has not reaped yet. Test hook for the opportunistic reaping.
  size_t tracked_sessions();

  /// Blocks until the server stopped serving (a shutdown request arrived
  /// or Stop() was called) and every session thread exited.
  void Wait();

  /// Graceful stop: stop accepting, unblock and join the sessions, close
  /// the live engine session. Idempotent; also called by the destructor.
  Status Stop();

 private:
  /// One accepted connection: its thread, its socket (-1 once the session
  /// closed it) and a completion flag the reaper keys on. `done` is the
  /// session thread's last store — once observed, join() returns
  /// (near-)immediately and the Session may be destroyed.
  struct Session {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };

  void ListenLoop();
  void SessionLoop(Session* session);
  void CloseListeners();
  /// Joins and erases sessions whose threads already finished. Caller
  /// holds sessions_mu_; done == true guarantees the thread no longer
  /// needs the mutex, so joining under it cannot deadlock.
  void ReapSessionsLocked();
  /// shutdown(SHUT_RDWR) every active session socket so blocked reads and
  /// writes both return.
  void UnblockSessions();
  /// Marks the server stopping and wakes the listener (no joining — safe
  /// from inside a session thread).
  void SignalStop();

  DispatchService* service_;
  AdmissionController* admission_;
  ServerConfig config_;
  int tcp_fd_ = -1;
  int unix_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};  // self-pipe: wakes poll() on Stop()
  std::mutex listener_mu_;  // serializes Wait()/Stop() joining the listener
  std::thread listener_;
  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
};

}  // namespace urr

#endif  // URR_SERVER_SERVER_H_

#include "server/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/json_writer.h"
#include "common/rng.h"
#include "engine/engine_metrics.h"

namespace urr {

namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

double SecondsSince(SteadyTime t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Result<ClientConnection> ClientConnection::Connect(const Endpoint& endpoint) {
  int fd = -1;
  if (endpoint.port > 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("connect 127.0.0.1:" +
                             std::to_string(endpoint.port) + ": " + err);
    }
  } else if (!endpoint.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return Status::InvalidArgument("unix socket path too long");
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("connect " + endpoint.unix_path + ": " + err);
    }
  } else {
    return Status::InvalidArgument("endpoint has neither port nor unix path");
  }
  return ClientConnection(fd);
}

ClientConnection& ClientConnection::operator=(ClientConnection&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ClientConnection::SendRaw(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed the connection must surface as an
    // EPIPE IOError, not a process-killing SIGPIPE.
    const ssize_t w =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ClientConnection::Send(std::string_view payload) {
  return SendRaw(EncodeFrame(payload));
}

Result<std::string> ClientConnection::Recv() {
  std::string payload;
  char buf[4096];
  for (;;) {
    const FrameReader::Next next = reader_.Poll(&payload);
    if (next == FrameReader::Next::kFrame) return payload;
    if (next == FrameReader::Next::kOversized) {
      return Status::IOError("server sent an oversized frame");
    }
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) {
      return Status::IOError("connection closed mid-frame");
    }
    reader_.Feed(buf, static_cast<size_t>(r));
  }
}

Result<JsonValue> ClientConnection::Call(std::string_view payload) {
  URR_RETURN_NOT_OK(Send(payload));
  URR_ASSIGN_OR_RETURN(std::string resp, Recv());
  return ParseJson(resp);
}

std::string LoadGenReport::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Field("sent", sent)
      .Field("ok", ok)
      .Field("queued", queued)
      .Field("assigned", assigned)
      .Field("rejected_admission", rejected_admission)
      .Field("rejected_infeasible", rejected_infeasible)
      .Field("errors", errors)
      .Field("elapsed_seconds", elapsed)
      .Field("latency_p50", p50)
      .Field("latency_p95", p95)
      .Field("latency_p99", p99)
      .Field("latency_max", max)
      .Field("shed_latency_p50", shed_p50)
      .Field("shed_latency_p95", shed_p95)
      .Field("shed_latency_p99", shed_p99)
      .Field("goodput", goodput)
      .Field("rejection_rate", rejection_rate)
      .EndObject();
  return w.str();
}

namespace {

/// Intensity multiplier of the two-peak day profile at x = t/duration in
/// [0,1]. Mean over [0,1] is ~1, so `rate` stays the mean rate.
double PeakProfile(double x) {
  const double morning = std::exp(-0.5 * std::pow((x - 0.25) / 0.08, 2.0));
  const double evening = std::exp(-0.5 * std::pow((x - 0.70) / 0.10, 2.0));
  return 0.45 + 1.55 * morning + 1.25 * evening;
}

struct ScheduledCall {
  double at = 0;  // seconds from schedule start
  RiderId rider = -1;
  bool cancel = false;
};

/// Draws the open-loop arrival schedule: homogeneous Poisson for "const",
/// thinned nonhomogeneous Poisson for "peak". Riders are consumed in the
/// server's recorded arrival order.
std::vector<ScheduledCall> MakeSchedule(const std::vector<RiderId>& riders,
                                        const LoadGenOptions& options) {
  std::vector<ScheduledCall> schedule;
  Rng rng(options.seed);
  const bool peak = options.profile == "peak";
  // Thinning envelope: max of PeakProfile is < 2.1.
  const double lambda_max = options.rate * (peak ? 2.1 : 1.0);
  double t = 0;
  size_t next_rider = 0;
  while (next_rider < riders.size()) {
    t += rng.Exponential(lambda_max);
    if (t > options.duration) break;
    if (peak) {
      const double keep =
          PeakProfile(t / options.duration) * options.rate / lambda_max;
      if (rng.Uniform() > keep) continue;
    }
    ScheduledCall call;
    call.at = t;
    call.rider = riders[next_rider++];
    schedule.push_back(call);
    if (options.cancel_fraction > 0 &&
        rng.Uniform() < options.cancel_fraction) {
      ScheduledCall c;
      c.at = t + 0.05;
      c.rider = call.rider;
      c.cancel = true;
      schedule.push_back(c);
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ScheduledCall& a, const ScheduledCall& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

struct WorkerTally {
  LoadGenReport report;
  std::vector<double> served_latencies;  // code 200 only
  std::vector<double> shed_latencies;    // 429 admission sheds
};

/// Classifies one response into the tally. Served and shed latencies go
/// into separate distributions: 429s return fast by design, so folding
/// them into one percentile would flatter the served tail exactly when
/// overload grows the shed share.
void Record(WorkerTally* tally, const Result<JsonValue>& resp,
            double latency) {
  LoadGenReport& r = tally->report;
  ++r.sent;
  if (!resp.ok()) {
    ++r.errors;
    return;
  }
  const int64_t code = resp->GetInt("code", 0);
  const std::string result = resp->GetString("result", "");
  if (code == 429) {
    ++r.rejected_admission;
    tally->shed_latencies.push_back(latency);
    return;
  }
  if (code != 200) {
    ++r.errors;
    return;
  }
  ++r.ok;
  tally->served_latencies.push_back(latency);
  if (result == "queued") ++r.queued;
  else if (result == "assigned") ++r.assigned;
  else if (result == "rejected") ++r.rejected_infeasible;
}

LoadGenReport MergeTallies(std::vector<WorkerTally>* tallies,
                           double elapsed) {
  LoadGenReport total;
  std::vector<double> served;
  std::vector<double> shed;
  for (WorkerTally& t : *tallies) {
    total.sent += t.report.sent;
    total.ok += t.report.ok;
    total.queued += t.report.queued;
    total.assigned += t.report.assigned;
    total.rejected_admission += t.report.rejected_admission;
    total.rejected_infeasible += t.report.rejected_infeasible;
    total.errors += t.report.errors;
    served.insert(served.end(), t.served_latencies.begin(),
                  t.served_latencies.end());
    shed.insert(shed.end(), t.shed_latencies.begin(), t.shed_latencies.end());
  }
  total.elapsed = elapsed;
  if (!served.empty()) {
    total.p50 = Percentile(served, 50);
    total.p95 = Percentile(served, 95);
    total.p99 = Percentile(served, 99);
    total.max = *std::max_element(served.begin(), served.end());
  }
  if (!shed.empty()) {
    total.shed_p50 = Percentile(shed, 50);
    total.shed_p95 = Percentile(shed, 95);
    total.shed_p99 = Percentile(shed, 99);
  }
  if (elapsed > 0) total.goodput = static_cast<double>(total.ok) / elapsed;
  if (total.sent > 0) {
    total.rejection_rate =
        static_cast<double>(total.rejected_admission) /
        static_cast<double>(total.sent);
  }
  return total;
}

}  // namespace

Result<LoadGenReport> RunOpenLoop(const Endpoint& endpoint,
                                  const LoadGenOptions& options) {
  if (options.connections <= 0) {
    return Status::InvalidArgument("connections must be positive");
  }
  // Fetch the rider universe (recorded arrival order) over a control
  // connection.
  URR_ASSIGN_OR_RETURN(ClientConnection control,
                       ClientConnection::Connect(endpoint));
  URR_ASSIGN_OR_RETURN(JsonValue workload,
                       control.Call("{\"op\":\"workload\"}"));
  const JsonValue* arrivals = workload.Find("arrivals");
  if (arrivals == nullptr || !arrivals->is_array()) {
    return Status::IOError("workload response carries no arrivals");
  }
  std::vector<RiderId> riders;
  riders.reserve(arrivals->items().size());
  for (const JsonValue& a : arrivals->items()) {
    if (a.is_array() && a.items().size() >= 1 && a.items()[0].is_number()) {
      riders.push_back(static_cast<RiderId>(a.items()[0].as_number()));
    }
  }
  control.Close();
  if (riders.empty()) {
    return Status::InvalidArgument("the server's workload has no riders");
  }
  const std::vector<ScheduledCall> schedule = MakeSchedule(riders, options);

  // N workers, each with its own connection, pulling the next scheduled
  // call from a shared cursor. Latency is measured from the scheduled
  // instant, so a backed-up connection reports its queueing delay.
  std::vector<ClientConnection> conns;
  conns.reserve(static_cast<size_t>(options.connections));
  for (int c = 0; c < options.connections; ++c) {
    URR_ASSIGN_OR_RETURN(ClientConnection conn,
                         ClientConnection::Connect(endpoint));
    conns.push_back(std::move(conn));
  }
  std::atomic<size_t> cursor{0};
  std::vector<WorkerTally> tallies(static_cast<size_t>(options.connections));
  const SteadyTime t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(conns.size());
  for (size_t c = 0; c < conns.size(); ++c) {
    workers.emplace_back([&, c] {
      ClientConnection& conn = conns[c];
      WorkerTally& tally = tallies[c];
      for (;;) {
        const size_t i = cursor.fetch_add(1);
        if (i >= schedule.size()) break;
        const ScheduledCall& call = schedule[i];
        const SteadyTime due =
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(call.at));
        std::this_thread::sleep_until(due);
        JsonWriter w;
        w.BeginObject()
            .Field("op", call.cancel ? "cancel_rider" : "submit_rider")
            .Field("id", static_cast<int64_t>(i))
            .Field("rider", call.rider)
            .EndObject();
        const Result<JsonValue> resp = conn.Call(w.str());
        const double latency = SecondsSince(t0) - call.at;
        if (call.cancel) {
          // Cancels keep the connection warm but are not arrival outcomes;
          // only transport failures count.
          if (!resp.ok()) ++tally.report.errors;
          continue;
        }
        Record(&tally, resp, latency);
        if (!resp.ok()) break;  // connection is gone; stop this worker
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed = SecondsSince(t0);
  return MergeTallies(&tallies, elapsed);
}

Result<LoadGenReport> RunReplay(const Endpoint& endpoint,
                                bool shutdown_after) {
  URR_ASSIGN_OR_RETURN(ClientConnection conn,
                       ClientConnection::Connect(endpoint));
  URR_ASSIGN_OR_RETURN(JsonValue workload,
                       conn.Call("{\"op\":\"workload\"}"));
  struct Entry {
    double time;
    int rank;  // 0 arrival, 1 cancel — the engine's tie-break order
    size_t index;
    RiderId rider;
  };
  std::vector<Entry> entries;
  const auto collect = [&](const char* key, int rank) {
    const JsonValue* list = workload.Find(key);
    if (list == nullptr || !list->is_array()) return;
    for (size_t i = 0; i < list->items().size(); ++i) {
      const JsonValue& pair = list->items()[i];
      if (!pair.is_array() || pair.items().size() < 2) continue;
      entries.push_back({pair.items()[1].as_number(), rank, i,
                         static_cast<RiderId>(pair.items()[0].as_number())});
    }
  };
  collect("arrivals", 0);
  collect("cancellations", 1);
  // The engine's queue orders same-instant entries by rank then insertion
  // seq; replaying in (time, rank, recorded index) order reproduces the
  // batch seq assignment exactly.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.index < b.index;
  });
  std::vector<WorkerTally> tallies(1);
  const SteadyTime t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    JsonWriter w;
    w.BeginObject()
        .Field("op", e.rank == 0 ? "submit_rider" : "cancel_rider")
        .Field("id", static_cast<int64_t>(i))
        .Field("rider", e.rider)
        .Field("time", e.time)
        .EndObject();
    const double sent_at = SecondsSince(t0);
    const Result<JsonValue> resp = conn.Call(w.str());
    if (e.rank == 0) {
      Record(&tallies[0], resp, SecondsSince(t0) - sent_at);
    } else if (!resp.ok()) {
      ++tallies[0].report.errors;
    }
    if (!resp.ok()) {
      return Status::IOError("replay aborted at entry " + std::to_string(i) +
                             ": " + resp.status().message());
    }
  }
  if (shutdown_after) {
    URR_ASSIGN_OR_RETURN(JsonValue resp, conn.Call("{\"op\":\"shutdown\"}"));
    if (resp.GetInt("code", 0) != 200) {
      return Status::IOError("shutdown request failed");
    }
  }
  return MergeTallies(&tallies, SecondsSince(t0));
}

}  // namespace urr

#include "server/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/json_writer.h"
#include "common/rng.h"
#include "engine/engine_metrics.h"

namespace urr {

namespace {

using SteadyTime = std::chrono::steady_clock::time_point;

double SecondsSince(SteadyTime t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Result<ClientConnection> ClientConnection::Connect(const Endpoint& endpoint) {
  int fd = -1;
  if (endpoint.port > 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(endpoint.port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("connect 127.0.0.1:" +
                             std::to_string(endpoint.port) + ": " + err);
    }
  } else if (!endpoint.unix_path.empty()) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError("socket: " + std::string(std::strerror(errno)));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.unix_path.size() >= sizeof(addr.sun_path)) {
      ::close(fd);
      return Status::InvalidArgument("unix socket path too long");
    }
    std::strncpy(addr.sun_path, endpoint.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("connect " + endpoint.unix_path + ": " + err);
    }
  } else {
    return Status::InvalidArgument("endpoint has neither port nor unix path");
  }
  return ClientConnection(fd);
}

ClientConnection& ClientConnection::operator=(ClientConnection&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ClientConnection::SendRaw(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a server that closed the connection must surface as an
    // EPIPE IOError, not a process-killing SIGPIPE.
    const ssize_t w =
        ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IOError("send timed out");
      }
      return Status::IOError("write: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ClientConnection::Send(std::string_view payload) {
  return SendRaw(EncodeFrame(payload));
}

Result<std::string> ClientConnection::Recv() {
  std::string payload;
  char buf[4096];
  for (;;) {
    const FrameReader::Next next = reader_.Poll(&payload);
    if (next == FrameReader::Next::kFrame) return payload;
    if (next == FrameReader::Next::kOversized) {
      return Status::IOError("server sent an oversized frame");
    }
    const ssize_t r = ::read(fd_, buf, sizeof(buf));
    if (r < 0 && errno == EINTR) continue;
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::IOError("timed out waiting for a response");
    }
    if (r <= 0) {
      return Status::IOError("connection closed mid-frame");
    }
    reader_.Feed(buf, static_cast<size_t>(r));
  }
}

Result<JsonValue> ClientConnection::Call(std::string_view payload) {
  URR_RETURN_NOT_OK(Send(payload));
  URR_ASSIGN_OR_RETURN(std::string resp, Recv());
  return ParseJson(resp);
}

Status ClientConnection::SetTimeout(double seconds) {
  if (seconds <= 0) return Status::OK();
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - tv.tv_sec) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError("setsockopt timeout: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

ResilientClient::ResilientClient(const Endpoint& endpoint,
                                 const RetryPolicy& policy,
                                 uint64_t jitter_seed)
    : endpoint_(endpoint), policy_(policy), rng_(jitter_seed) {}

Status ResilientClient::EnsureConnected() {
  if (conn_.has_value()) return Status::OK();
  const SteadyTime gap_start = std::chrono::steady_clock::now();
  Result<ClientConnection> conn = ClientConnection::Connect(endpoint_);
  gap_seconds_ += SecondsSince(gap_start);
  URR_RETURN_NOT_OK(conn.status());
  URR_RETURN_NOT_OK(conn->SetTimeout(policy_.request_timeout));
  conn_.emplace(std::move(*conn));
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  return Status::OK();
}

Result<JsonValue> ResilientClient::Call(std::string_view payload) {
  Status last = Status::OK();
  const int attempts = policy_.max_attempts < 1 ? 1 : policy_.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      // Exponential backoff with jitter; the sleep is part of the
      // connection gap the report accounts for.
      const double base = policy_.base_backoff *
                          static_cast<double>(int64_t{1} << (attempt - 1));
      const double backoff =
          std::min(policy_.max_backoff, base) * (0.5 + rng_.Uniform());
      gap_seconds_ += backoff;
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    }
    last = EnsureConnected();
    if (!last.ok()) continue;
    Result<JsonValue> resp = conn_->Call(payload);
    if (resp.ok()) return resp;
    // Ambiguous transport failure: the request may or may not have been
    // executed. Drop the connection and resend the identical payload —
    // the server's req_id dedup keeps the retry from mutating twice.
    last = resp.status();
    conn_.reset();
  }
  return last.ok() ? Status::IOError("request failed") : last;
}

std::string LoadGenReport::ToJson() const {
  JsonWriter w;
  w.BeginObject()
      .Field("sent", sent)
      .Field("cancels", cancels)
      .Field("ok", ok)
      .Field("queued", queued)
      .Field("assigned", assigned)
      .Field("rejected_admission", rejected_admission)
      .Field("rejected_infeasible", rejected_infeasible)
      .Field("errors", errors)
      .Field("elapsed_seconds", elapsed)
      .Field("latency_p50", p50)
      .Field("latency_p95", p95)
      .Field("latency_p99", p99)
      .Field("latency_max", max)
      .Field("shed_latency_p50", shed_p50)
      .Field("shed_latency_p95", shed_p95)
      .Field("shed_latency_p99", shed_p99)
      .Field("goodput", goodput)
      .Field("rejection_rate", rejection_rate)
      .Field("reconnects", reconnects)
      .Field("retries", retries)
      .Field("gap_seconds", gap_seconds)
      .EndObject();
  return w.str();
}

namespace {

/// Intensity multiplier of the two-peak day profile at x = t/duration in
/// [0,1]. Mean over [0,1] is ~1, so `rate` stays the mean rate.
double PeakProfile(double x) {
  const double morning = std::exp(-0.5 * std::pow((x - 0.25) / 0.08, 2.0));
  const double evening = std::exp(-0.5 * std::pow((x - 0.70) / 0.10, 2.0));
  return 0.45 + 1.55 * morning + 1.25 * evening;
}

struct ScheduledCall {
  double at = 0;  // seconds from schedule start
  RiderId rider = -1;
  bool cancel = false;
};

/// One recorded (rider, time) pair of the server's workload.
struct RecordedEntry {
  RiderId rider = -1;
  double time = 0;
};

/// Fetches the server's recorded workload in pages (a large universe does
/// not fit the 1 MiB frame cap in one response). List order — and therefore
/// each entry's global index, the replay tie-break — is preserved.
Status FetchWorkload(ResilientClient* conn,
                     std::vector<RecordedEntry>* arrivals,
                     std::vector<RecordedEntry>* cancellations) {
  constexpr int64_t kPage = 4096;
  int64_t offset = 0;
  for (;;) {
    JsonWriter w;
    w.BeginObject()
        .Field("op", "workload")
        .Field("offset", offset)
        .Field("limit", kPage)
        .EndObject();
    URR_ASSIGN_OR_RETURN(JsonValue resp, conn->Call(w.str()));
    if (resp.GetInt("code", 0) != 200) {
      return Status::IOError("workload request failed: " +
                             resp.GetString("error", "unknown error"));
    }
    const auto collect = [&resp](const char* key,
                                 std::vector<RecordedEntry>* out) {
      const JsonValue* list = resp.Find(key);
      if (list == nullptr || !list->is_array()) return;
      for (const JsonValue& pair : list->items()) {
        if (pair.is_array() && pair.items().size() >= 2 &&
            pair.items()[0].is_number() && pair.items()[1].is_number()) {
          out->push_back({static_cast<RiderId>(pair.items()[0].as_number()),
                          pair.items()[1].as_number()});
        }
      }
    };
    collect("arrivals", arrivals);
    collect("cancellations", cancellations);
    const int64_t a_total = resp.GetInt("arrivals_total", -1);
    const int64_t c_total = resp.GetInt("cancellations_total", -1);
    if (a_total < 0 || c_total < 0) {
      // Single-shot response without totals: everything came at once.
      return Status::OK();
    }
    offset += kPage;
    if (offset >= a_total && offset >= c_total) {
      if (static_cast<int64_t>(arrivals->size()) != a_total ||
          static_cast<int64_t>(cancellations->size()) != c_total) {
        return Status::IOError(
            "paged workload fetch came up short: " +
            std::to_string(arrivals->size()) + "/" + std::to_string(a_total) +
            " arrivals, " + std::to_string(cancellations->size()) + "/" +
            std::to_string(c_total) + " cancellations");
      }
      return Status::OK();
    }
  }
}

/// Draws the open-loop arrival schedule: homogeneous Poisson for "const",
/// thinned nonhomogeneous Poisson for "peak". Riders are consumed in the
/// server's recorded arrival order.
std::vector<ScheduledCall> MakeSchedule(const std::vector<RiderId>& riders,
                                        const LoadGenOptions& options) {
  std::vector<ScheduledCall> schedule;
  Rng rng(options.seed);
  const bool peak = options.profile == "peak";
  // Thinning envelope: max of PeakProfile is < 2.1.
  const double lambda_max = options.rate * (peak ? 2.1 : 1.0);
  double t = 0;
  size_t next_rider = 0;
  while (next_rider < riders.size()) {
    t += rng.Exponential(lambda_max);
    if (t > options.duration) break;
    if (peak) {
      const double keep =
          PeakProfile(t / options.duration) * options.rate / lambda_max;
      if (rng.Uniform() > keep) continue;
    }
    ScheduledCall call;
    call.at = t;
    call.rider = riders[next_rider++];
    schedule.push_back(call);
    if (options.cancel_fraction > 0 &&
        rng.Uniform() < options.cancel_fraction) {
      ScheduledCall c;
      c.at = t + 0.05;
      c.rider = call.rider;
      c.cancel = true;
      schedule.push_back(c);
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const ScheduledCall& a, const ScheduledCall& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

struct WorkerTally {
  LoadGenReport report;
  std::vector<double> served_latencies;  // code 200 only
  std::vector<double> shed_latencies;    // 429 admission sheds
};

/// Classifies one response into the tally. Served and shed latencies go
/// into separate distributions: 429s return fast by design, so folding
/// them into one percentile would flatter the served tail exactly when
/// overload grows the shed share.
void Record(WorkerTally* tally, const Result<JsonValue>& resp,
            double latency) {
  LoadGenReport& r = tally->report;
  ++r.sent;
  if (!resp.ok()) {
    ++r.errors;
    return;
  }
  const int64_t code = resp->GetInt("code", 0);
  const std::string result = resp->GetString("result", "");
  if (code == 429) {
    ++r.rejected_admission;
    tally->shed_latencies.push_back(latency);
    return;
  }
  if (code != 200) {
    ++r.errors;
    return;
  }
  ++r.ok;
  tally->served_latencies.push_back(latency);
  if (result == "queued") ++r.queued;
  else if (result == "assigned") ++r.assigned;
  else if (result == "rejected") ++r.rejected_infeasible;
}

LoadGenReport MergeTallies(std::vector<WorkerTally>* tallies,
                           double elapsed) {
  LoadGenReport total;
  std::vector<double> served;
  std::vector<double> shed;
  for (WorkerTally& t : *tallies) {
    total.sent += t.report.sent;
    total.cancels += t.report.cancels;
    total.ok += t.report.ok;
    total.queued += t.report.queued;
    total.assigned += t.report.assigned;
    total.rejected_admission += t.report.rejected_admission;
    total.rejected_infeasible += t.report.rejected_infeasible;
    total.errors += t.report.errors;
    served.insert(served.end(), t.served_latencies.begin(),
                  t.served_latencies.end());
    shed.insert(shed.end(), t.shed_latencies.begin(), t.shed_latencies.end());
  }
  total.elapsed = elapsed;
  if (!served.empty()) {
    total.p50 = Percentile(served, 50);
    total.p95 = Percentile(served, 95);
    total.p99 = Percentile(served, 99);
    total.max = *std::max_element(served.begin(), served.end());
  }
  if (!shed.empty()) {
    total.shed_p50 = Percentile(shed, 50);
    total.shed_p95 = Percentile(shed, 95);
    total.shed_p99 = Percentile(shed, 99);
  }
  if (elapsed > 0) total.goodput = static_cast<double>(total.ok) / elapsed;
  if (total.sent > 0) {
    total.rejection_rate =
        static_cast<double>(total.rejected_admission) /
        static_cast<double>(total.sent);
  }
  return total;
}

}  // namespace

Result<LoadGenReport> RunOpenLoop(const Endpoint& endpoint,
                                  const LoadGenOptions& options) {
  if (options.connections <= 0) {
    return Status::InvalidArgument("connections must be positive");
  }
  // Fetch the rider universe (recorded arrival order) over a control
  // connection, in pages.
  std::vector<RecordedEntry> arrivals;
  std::vector<RecordedEntry> cancellations;
  {
    ResilientClient control(endpoint, options.retry, options.seed ^ 0xf37c4);
    URR_RETURN_NOT_OK(FetchWorkload(&control, &arrivals, &cancellations));
  }
  std::vector<RiderId> riders;
  riders.reserve(arrivals.size());
  for (const RecordedEntry& a : arrivals) riders.push_back(a.rider);
  if (options.rider_offset > 0) {
    const size_t skip = std::min(
        riders.size(), static_cast<size_t>(options.rider_offset));
    riders.erase(riders.begin(),
                 riders.begin() + static_cast<ptrdiff_t>(skip));
  }
  if (riders.empty()) {
    return Status::InvalidArgument(
        "the server's workload has no riders left (offset " +
        std::to_string(options.rider_offset) + ")");
  }
  const std::vector<ScheduledCall> schedule = MakeSchedule(riders, options);

  // N workers, each behind a resilient connection, pulling the next
  // scheduled call from a shared cursor. Latency is measured from the
  // scheduled instant, so a backed-up connection reports its queueing
  // delay — and a reconnecting one reports its gap: a worker never stops
  // on a transport failure, it keeps attempting every scheduled request,
  // which is what keeps reconnect time inside the latency distribution
  // instead of silently vanishing (coordinated-omission correction).
  std::vector<ResilientClient> clients;
  clients.reserve(static_cast<size_t>(options.connections));
  for (int c = 0; c < options.connections; ++c) {
    clients.emplace_back(endpoint, options.retry,
                         options.seed ^ (0x9e3779b97f4a7c15ULL *
                                         static_cast<uint64_t>(c + 1)));
    URR_RETURN_NOT_OK(clients.back().Preconnect());
  }
  std::atomic<size_t> cursor{0};
  std::vector<WorkerTally> tallies(static_cast<size_t>(options.connections));
  const SteadyTime t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients.size());
  for (size_t c = 0; c < clients.size(); ++c) {
    workers.emplace_back([&, c] {
      ResilientClient& client = clients[c];
      WorkerTally& tally = tallies[c];
      for (;;) {
        const size_t i = cursor.fetch_add(1);
        if (i >= schedule.size()) break;
        const ScheduledCall& call = schedule[i];
        const SteadyTime due =
            t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(call.at));
        std::this_thread::sleep_until(due);
        // Idempotency key: rider-derived, stable across retries and unique
        // across phases (rider universes of consecutive phases are
        // disjoint via rider_offset).
        JsonWriter w;
        w.BeginObject()
            .Field("op", call.cancel ? "cancel_rider" : "submit_rider")
            .Field("id", static_cast<int64_t>(i))
            .Field("req_id",
                   static_cast<int64_t>(call.rider) * 2 + (call.cancel ? 1 : 0))
            .Field("rider", call.rider)
            .EndObject();
        const Result<JsonValue> resp = client.Call(w.str());
        const double latency = SecondsSince(t0) - call.at;
        if (call.cancel) {
          // Cancels are real requests but not arrival outcomes: they are
          // tallied apart so `sent` keeps meaning "submits attempted".
          ++tally.report.cancels;
          if (!resp.ok()) ++tally.report.errors;
          continue;
        }
        Record(&tally, resp, latency);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const double elapsed = SecondsSince(t0);
  LoadGenReport total = MergeTallies(&tallies, elapsed);
  for (const ResilientClient& client : clients) {
    total.reconnects += client.reconnects();
    total.retries += client.retries();
    total.gap_seconds += client.gap_seconds();
  }
  return total;
}

Result<LoadGenReport> RunReplay(const Endpoint& endpoint, bool shutdown_after,
                                int64_t limit) {
  ResilientClient conn(endpoint, RetryPolicy{}, /*jitter_seed=*/1);
  URR_RETURN_NOT_OK(conn.Preconnect());
  std::vector<RecordedEntry> arrivals;
  std::vector<RecordedEntry> cancellations;
  URR_RETURN_NOT_OK(FetchWorkload(&conn, &arrivals, &cancellations));
  struct Entry {
    double time;
    int rank;  // 0 arrival, 1 cancel — the engine's tie-break order
    size_t index;
    RiderId rider;
  };
  std::vector<Entry> entries;
  const auto collect = [&entries](const std::vector<RecordedEntry>& list,
                                  int rank) {
    for (size_t i = 0; i < list.size(); ++i) {
      entries.push_back({list[i].time, rank, i, list[i].rider});
    }
  };
  collect(arrivals, 0);
  collect(cancellations, 1);
  // The engine's queue orders same-instant entries by rank then insertion
  // seq; replaying in (time, rank, recorded index) order reproduces the
  // batch seq assignment exactly.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.index < b.index;
  });
  if (limit > 0 && static_cast<size_t>(limit) < entries.size()) {
    entries.resize(static_cast<size_t>(limit));
  }
  std::vector<WorkerTally> tallies(1);
  const SteadyTime t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    // The req_id is the sorted-schedule index — identical across replay
    // runs of the same workload, so a re-replay against a recovered
    // server dedups its already-applied prefix instead of mutating twice.
    JsonWriter w;
    w.BeginObject()
        .Field("op", e.rank == 0 ? "submit_rider" : "cancel_rider")
        .Field("id", static_cast<int64_t>(i))
        .Field("req_id", static_cast<int64_t>(i))
        .Field("rider", e.rider)
        .Field("time", e.time)
        .EndObject();
    const double sent_at = SecondsSince(t0);
    const Result<JsonValue> resp = conn.Call(w.str());
    if (e.rank == 0) {
      Record(&tallies[0], resp, SecondsSince(t0) - sent_at);
    } else if (!resp.ok()) {
      ++tallies[0].report.errors;
    }
    if (!resp.ok()) {
      return Status::IOError("replay aborted at entry " + std::to_string(i) +
                             ": " + resp.status().message());
    }
  }
  if (shutdown_after) {
    URR_ASSIGN_OR_RETURN(JsonValue resp, conn.Call("{\"op\":\"shutdown\"}"));
    if (resp.GetInt("code", 0) != 200) {
      return Status::IOError("shutdown request failed");
    }
  }
  LoadGenReport total = MergeTallies(&tallies, SecondsSince(t0));
  total.reconnects = conn.reconnects();
  total.retries = conn.retries();
  total.gap_seconds = conn.gap_seconds();
  return total;
}

}  // namespace urr

# Empty dependencies file for checkins_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/checkins_test.dir/checkins_test.cc.o"
  "CMakeFiles/checkins_test.dir/checkins_test.cc.o.d"
  "checkins_test"
  "checkins_test.pdb"
  "checkins_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkins_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

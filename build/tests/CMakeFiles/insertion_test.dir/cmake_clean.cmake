file(REMOVE_RECURSE
  "CMakeFiles/insertion_test.dir/insertion_test.cc.o"
  "CMakeFiles/insertion_test.dir/insertion_test.cc.o.d"
  "insertion_test"
  "insertion_test.pdb"
  "insertion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insertion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/trips_io_test.dir/trips_io_test.cc.o"
  "CMakeFiles/trips_io_test.dir/trips_io_test.cc.o.d"
  "trips_io_test"
  "trips_io_test.pdb"
  "trips_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trips_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for gbs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gbs_test.dir/gbs_test.cc.o"
  "CMakeFiles/gbs_test.dir/gbs_test.cc.o.d"
  "gbs_test"
  "gbs_test.pdb"
  "gbs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

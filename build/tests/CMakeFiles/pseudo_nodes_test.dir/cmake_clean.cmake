file(REMOVE_RECURSE
  "CMakeFiles/pseudo_nodes_test.dir/pseudo_nodes_test.cc.o"
  "CMakeFiles/pseudo_nodes_test.dir/pseudo_nodes_test.cc.o.d"
  "pseudo_nodes_test"
  "pseudo_nodes_test.pdb"
  "pseudo_nodes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudo_nodes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for pseudo_nodes_test.
# This may be replaced when dependencies are built.

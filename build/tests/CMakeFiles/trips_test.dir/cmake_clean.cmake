file(REMOVE_RECURSE
  "CMakeFiles/trips_test.dir/trips_test.cc.o"
  "CMakeFiles/trips_test.dir/trips_test.cc.o.d"
  "trips_test"
  "trips_test.pdb"
  "trips_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for trips_test.
# This may be replaced when dependencies are built.

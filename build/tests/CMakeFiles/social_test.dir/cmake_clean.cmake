file(REMOVE_RECURSE
  "CMakeFiles/social_test.dir/social_test.cc.o"
  "CMakeFiles/social_test.dir/social_test.cc.o.d"
  "social_test"
  "social_test.pdb"
  "social_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

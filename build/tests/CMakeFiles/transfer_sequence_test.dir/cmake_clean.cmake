file(REMOVE_RECURSE
  "CMakeFiles/transfer_sequence_test.dir/transfer_sequence_test.cc.o"
  "CMakeFiles/transfer_sequence_test.dir/transfer_sequence_test.cc.o.d"
  "transfer_sequence_test"
  "transfer_sequence_test.pdb"
  "transfer_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for transfer_sequence_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vehicle_index_test.dir/vehicle_index_test.cc.o"
  "CMakeFiles/vehicle_index_test.dir/vehicle_index_test.cc.o.d"
  "vehicle_index_test"
  "vehicle_index_test.pdb"
  "vehicle_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vehicle_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vehicle_index_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/history_similarity_test.dir/history_similarity_test.cc.o"
  "CMakeFiles/history_similarity_test.dir/history_similarity_test.cc.o.d"
  "history_similarity_test"
  "history_similarity_test.pdb"
  "history_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

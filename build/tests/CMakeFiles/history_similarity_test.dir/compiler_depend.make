# Empty compiler generated dependencies file for history_similarity_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for kspc_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kspc_test.dir/kspc_test.cc.o"
  "CMakeFiles/kspc_test.dir/kspc_test.cc.o.d"
  "kspc_test"
  "kspc_test.pdb"
  "kspc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

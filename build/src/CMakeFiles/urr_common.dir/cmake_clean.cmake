file(REMOVE_RECURSE
  "CMakeFiles/urr_common.dir/common/csv.cc.o"
  "CMakeFiles/urr_common.dir/common/csv.cc.o.d"
  "CMakeFiles/urr_common.dir/common/env.cc.o"
  "CMakeFiles/urr_common.dir/common/env.cc.o.d"
  "CMakeFiles/urr_common.dir/common/logging.cc.o"
  "CMakeFiles/urr_common.dir/common/logging.cc.o.d"
  "CMakeFiles/urr_common.dir/common/status.cc.o"
  "CMakeFiles/urr_common.dir/common/status.cc.o.d"
  "CMakeFiles/urr_common.dir/common/table.cc.o"
  "CMakeFiles/urr_common.dir/common/table.cc.o.d"
  "liburr_common.a"
  "liburr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

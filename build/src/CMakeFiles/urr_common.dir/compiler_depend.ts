# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for urr_common.

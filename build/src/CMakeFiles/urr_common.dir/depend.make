# Empty dependencies file for urr_common.
# This may be replaced when dependencies are built.

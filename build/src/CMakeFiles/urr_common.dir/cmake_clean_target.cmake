file(REMOVE_RECURSE
  "liburr_common.a"
)

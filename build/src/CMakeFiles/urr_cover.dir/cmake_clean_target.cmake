file(REMOVE_RECURSE
  "liburr_cover.a"
)

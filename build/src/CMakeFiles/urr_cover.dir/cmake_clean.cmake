file(REMOVE_RECURSE
  "CMakeFiles/urr_cover.dir/cover/areas.cc.o"
  "CMakeFiles/urr_cover.dir/cover/areas.cc.o.d"
  "CMakeFiles/urr_cover.dir/cover/kspc.cc.o"
  "CMakeFiles/urr_cover.dir/cover/kspc.cc.o.d"
  "liburr_cover.a"
  "liburr_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for urr_cover.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/urr_core.dir/urr/bilateral.cc.o"
  "CMakeFiles/urr_core.dir/urr/bilateral.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/cost_first.cc.o"
  "CMakeFiles/urr_core.dir/urr/cost_first.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/cost_model.cc.o"
  "CMakeFiles/urr_core.dir/urr/cost_model.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/gbs.cc.o"
  "CMakeFiles/urr_core.dir/urr/gbs.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/greedy.cc.o"
  "CMakeFiles/urr_core.dir/urr/greedy.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/metrics.cc.o"
  "CMakeFiles/urr_core.dir/urr/metrics.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/online.cc.o"
  "CMakeFiles/urr_core.dir/urr/online.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/optimal.cc.o"
  "CMakeFiles/urr_core.dir/urr/optimal.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/solution.cc.o"
  "CMakeFiles/urr_core.dir/urr/solution.cc.o.d"
  "CMakeFiles/urr_core.dir/urr/utility.cc.o"
  "CMakeFiles/urr_core.dir/urr/utility.cc.o.d"
  "liburr_core.a"
  "liburr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/urr/bilateral.cc" "src/CMakeFiles/urr_core.dir/urr/bilateral.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/bilateral.cc.o.d"
  "/root/repo/src/urr/cost_first.cc" "src/CMakeFiles/urr_core.dir/urr/cost_first.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/cost_first.cc.o.d"
  "/root/repo/src/urr/cost_model.cc" "src/CMakeFiles/urr_core.dir/urr/cost_model.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/cost_model.cc.o.d"
  "/root/repo/src/urr/gbs.cc" "src/CMakeFiles/urr_core.dir/urr/gbs.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/gbs.cc.o.d"
  "/root/repo/src/urr/greedy.cc" "src/CMakeFiles/urr_core.dir/urr/greedy.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/greedy.cc.o.d"
  "/root/repo/src/urr/metrics.cc" "src/CMakeFiles/urr_core.dir/urr/metrics.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/metrics.cc.o.d"
  "/root/repo/src/urr/online.cc" "src/CMakeFiles/urr_core.dir/urr/online.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/online.cc.o.d"
  "/root/repo/src/urr/optimal.cc" "src/CMakeFiles/urr_core.dir/urr/optimal.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/optimal.cc.o.d"
  "/root/repo/src/urr/solution.cc" "src/CMakeFiles/urr_core.dir/urr/solution.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/solution.cc.o.d"
  "/root/repo/src/urr/utility.cc" "src/CMakeFiles/urr_core.dir/urr/utility.cc.o" "gcc" "src/CMakeFiles/urr_core.dir/urr/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/urr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

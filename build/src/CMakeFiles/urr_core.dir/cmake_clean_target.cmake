file(REMOVE_RECURSE
  "liburr_core.a"
)

# Empty compiler generated dependencies file for urr_core.
# This may be replaced when dependencies are built.

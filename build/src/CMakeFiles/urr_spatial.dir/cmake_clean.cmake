file(REMOVE_RECURSE
  "CMakeFiles/urr_spatial.dir/spatial/grid_index.cc.o"
  "CMakeFiles/urr_spatial.dir/spatial/grid_index.cc.o.d"
  "CMakeFiles/urr_spatial.dir/spatial/vehicle_index.cc.o"
  "CMakeFiles/urr_spatial.dir/spatial/vehicle_index.cc.o.d"
  "liburr_spatial.a"
  "liburr_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liburr_spatial.a"
)

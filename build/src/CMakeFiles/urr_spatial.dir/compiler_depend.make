# Empty compiler generated dependencies file for urr_spatial.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liburr_trips.a"
)

# Empty dependencies file for urr_trips.
# This may be replaced when dependencies are built.

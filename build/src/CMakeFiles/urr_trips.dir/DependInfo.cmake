
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trips/instance_builder.cc" "src/CMakeFiles/urr_trips.dir/trips/instance_builder.cc.o" "gcc" "src/CMakeFiles/urr_trips.dir/trips/instance_builder.cc.o.d"
  "/root/repo/src/trips/instance_io.cc" "src/CMakeFiles/urr_trips.dir/trips/instance_io.cc.o" "gcc" "src/CMakeFiles/urr_trips.dir/trips/instance_io.cc.o.d"
  "/root/repo/src/trips/io.cc" "src/CMakeFiles/urr_trips.dir/trips/io.cc.o" "gcc" "src/CMakeFiles/urr_trips.dir/trips/io.cc.o.d"
  "/root/repo/src/trips/poisson_model.cc" "src/CMakeFiles/urr_trips.dir/trips/poisson_model.cc.o" "gcc" "src/CMakeFiles/urr_trips.dir/trips/poisson_model.cc.o.d"
  "/root/repo/src/trips/preferences.cc" "src/CMakeFiles/urr_trips.dir/trips/preferences.cc.o" "gcc" "src/CMakeFiles/urr_trips.dir/trips/preferences.cc.o.d"
  "/root/repo/src/trips/trip_generator.cc" "src/CMakeFiles/urr_trips.dir/trips/trip_generator.cc.o" "gcc" "src/CMakeFiles/urr_trips.dir/trips/trip_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/urr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

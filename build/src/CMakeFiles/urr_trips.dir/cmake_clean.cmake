file(REMOVE_RECURSE
  "CMakeFiles/urr_trips.dir/trips/instance_builder.cc.o"
  "CMakeFiles/urr_trips.dir/trips/instance_builder.cc.o.d"
  "CMakeFiles/urr_trips.dir/trips/instance_io.cc.o"
  "CMakeFiles/urr_trips.dir/trips/instance_io.cc.o.d"
  "CMakeFiles/urr_trips.dir/trips/io.cc.o"
  "CMakeFiles/urr_trips.dir/trips/io.cc.o.d"
  "CMakeFiles/urr_trips.dir/trips/poisson_model.cc.o"
  "CMakeFiles/urr_trips.dir/trips/poisson_model.cc.o.d"
  "CMakeFiles/urr_trips.dir/trips/preferences.cc.o"
  "CMakeFiles/urr_trips.dir/trips/preferences.cc.o.d"
  "CMakeFiles/urr_trips.dir/trips/trip_generator.cc.o"
  "CMakeFiles/urr_trips.dir/trips/trip_generator.cc.o.d"
  "liburr_trips.a"
  "liburr_trips.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_trips.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

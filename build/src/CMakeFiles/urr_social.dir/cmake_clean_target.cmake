file(REMOVE_RECURSE
  "liburr_social.a"
)

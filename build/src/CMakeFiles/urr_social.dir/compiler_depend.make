# Empty compiler generated dependencies file for urr_social.
# This may be replaced when dependencies are built.

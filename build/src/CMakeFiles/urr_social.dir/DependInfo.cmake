
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/social/checkins.cc" "src/CMakeFiles/urr_social.dir/social/checkins.cc.o" "gcc" "src/CMakeFiles/urr_social.dir/social/checkins.cc.o.d"
  "/root/repo/src/social/generators.cc" "src/CMakeFiles/urr_social.dir/social/generators.cc.o" "gcc" "src/CMakeFiles/urr_social.dir/social/generators.cc.o.d"
  "/root/repo/src/social/history_similarity.cc" "src/CMakeFiles/urr_social.dir/social/history_similarity.cc.o" "gcc" "src/CMakeFiles/urr_social.dir/social/history_similarity.cc.o.d"
  "/root/repo/src/social/social_graph.cc" "src/CMakeFiles/urr_social.dir/social/social_graph.cc.o" "gcc" "src/CMakeFiles/urr_social.dir/social/social_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/urr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/urr_social.dir/social/checkins.cc.o"
  "CMakeFiles/urr_social.dir/social/checkins.cc.o.d"
  "CMakeFiles/urr_social.dir/social/generators.cc.o"
  "CMakeFiles/urr_social.dir/social/generators.cc.o.d"
  "CMakeFiles/urr_social.dir/social/history_similarity.cc.o"
  "CMakeFiles/urr_social.dir/social/history_similarity.cc.o.d"
  "CMakeFiles/urr_social.dir/social/social_graph.cc.o"
  "CMakeFiles/urr_social.dir/social/social_graph.cc.o.d"
  "liburr_social.a"
  "liburr_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/urr_routing.dir/routing/alt.cc.o"
  "CMakeFiles/urr_routing.dir/routing/alt.cc.o.d"
  "CMakeFiles/urr_routing.dir/routing/bidirectional.cc.o"
  "CMakeFiles/urr_routing.dir/routing/bidirectional.cc.o.d"
  "CMakeFiles/urr_routing.dir/routing/contraction_hierarchy.cc.o"
  "CMakeFiles/urr_routing.dir/routing/contraction_hierarchy.cc.o.d"
  "CMakeFiles/urr_routing.dir/routing/dijkstra.cc.o"
  "CMakeFiles/urr_routing.dir/routing/dijkstra.cc.o.d"
  "CMakeFiles/urr_routing.dir/routing/distance_oracle.cc.o"
  "CMakeFiles/urr_routing.dir/routing/distance_oracle.cc.o.d"
  "liburr_routing.a"
  "liburr_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/alt.cc" "src/CMakeFiles/urr_routing.dir/routing/alt.cc.o" "gcc" "src/CMakeFiles/urr_routing.dir/routing/alt.cc.o.d"
  "/root/repo/src/routing/bidirectional.cc" "src/CMakeFiles/urr_routing.dir/routing/bidirectional.cc.o" "gcc" "src/CMakeFiles/urr_routing.dir/routing/bidirectional.cc.o.d"
  "/root/repo/src/routing/contraction_hierarchy.cc" "src/CMakeFiles/urr_routing.dir/routing/contraction_hierarchy.cc.o" "gcc" "src/CMakeFiles/urr_routing.dir/routing/contraction_hierarchy.cc.o.d"
  "/root/repo/src/routing/dijkstra.cc" "src/CMakeFiles/urr_routing.dir/routing/dijkstra.cc.o" "gcc" "src/CMakeFiles/urr_routing.dir/routing/dijkstra.cc.o.d"
  "/root/repo/src/routing/distance_oracle.cc" "src/CMakeFiles/urr_routing.dir/routing/distance_oracle.cc.o" "gcc" "src/CMakeFiles/urr_routing.dir/routing/distance_oracle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/urr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liburr_routing.a"
)

# Empty compiler generated dependencies file for urr_routing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/urr_sched.dir/sched/insertion.cc.o"
  "CMakeFiles/urr_sched.dir/sched/insertion.cc.o.d"
  "CMakeFiles/urr_sched.dir/sched/kinetic_tree.cc.o"
  "CMakeFiles/urr_sched.dir/sched/kinetic_tree.cc.o.d"
  "CMakeFiles/urr_sched.dir/sched/reorder.cc.o"
  "CMakeFiles/urr_sched.dir/sched/reorder.cc.o.d"
  "CMakeFiles/urr_sched.dir/sched/route.cc.o"
  "CMakeFiles/urr_sched.dir/sched/route.cc.o.d"
  "CMakeFiles/urr_sched.dir/sched/transfer_sequence.cc.o"
  "CMakeFiles/urr_sched.dir/sched/transfer_sequence.cc.o.d"
  "liburr_sched.a"
  "liburr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

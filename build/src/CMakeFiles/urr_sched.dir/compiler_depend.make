# Empty compiler generated dependencies file for urr_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liburr_sched.a"
)

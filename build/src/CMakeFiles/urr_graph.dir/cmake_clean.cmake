file(REMOVE_RECURSE
  "CMakeFiles/urr_graph.dir/graph/dimacs.cc.o"
  "CMakeFiles/urr_graph.dir/graph/dimacs.cc.o.d"
  "CMakeFiles/urr_graph.dir/graph/generators.cc.o"
  "CMakeFiles/urr_graph.dir/graph/generators.cc.o.d"
  "CMakeFiles/urr_graph.dir/graph/pseudo_nodes.cc.o"
  "CMakeFiles/urr_graph.dir/graph/pseudo_nodes.cc.o.d"
  "CMakeFiles/urr_graph.dir/graph/road_network.cc.o"
  "CMakeFiles/urr_graph.dir/graph/road_network.cc.o.d"
  "liburr_graph.a"
  "liburr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for urr_graph.
# This may be replaced when dependencies are built.

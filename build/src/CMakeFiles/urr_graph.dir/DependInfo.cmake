
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dimacs.cc" "src/CMakeFiles/urr_graph.dir/graph/dimacs.cc.o" "gcc" "src/CMakeFiles/urr_graph.dir/graph/dimacs.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/CMakeFiles/urr_graph.dir/graph/generators.cc.o" "gcc" "src/CMakeFiles/urr_graph.dir/graph/generators.cc.o.d"
  "/root/repo/src/graph/pseudo_nodes.cc" "src/CMakeFiles/urr_graph.dir/graph/pseudo_nodes.cc.o" "gcc" "src/CMakeFiles/urr_graph.dir/graph/pseudo_nodes.cc.o.d"
  "/root/repo/src/graph/road_network.cc" "src/CMakeFiles/urr_graph.dir/graph/road_network.cc.o" "gcc" "src/CMakeFiles/urr_graph.dir/graph/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/urr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liburr_graph.a"
)

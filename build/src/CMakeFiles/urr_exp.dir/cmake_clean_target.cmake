file(REMOVE_RECURSE
  "liburr_exp.a"
)

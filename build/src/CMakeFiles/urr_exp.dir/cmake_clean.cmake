file(REMOVE_RECURSE
  "CMakeFiles/urr_exp.dir/exp/harness.cc.o"
  "CMakeFiles/urr_exp.dir/exp/harness.cc.o.d"
  "CMakeFiles/urr_exp.dir/exp/simulation.cc.o"
  "CMakeFiles/urr_exp.dir/exp/simulation.cc.o.d"
  "CMakeFiles/urr_exp.dir/exp/sweep.cc.o"
  "CMakeFiles/urr_exp.dir/exp/sweep.cc.o.d"
  "liburr_exp.a"
  "liburr_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for urr_exp.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for social_matching.
# This may be replaced when dependencies are built.

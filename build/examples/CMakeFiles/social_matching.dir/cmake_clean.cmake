file(REMOVE_RECURSE
  "CMakeFiles/social_matching.dir/social_matching.cpp.o"
  "CMakeFiles/social_matching.dir/social_matching.cpp.o.d"
  "social_matching"
  "social_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

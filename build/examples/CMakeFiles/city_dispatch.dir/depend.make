# Empty dependencies file for city_dispatch.
# This may be replaced when dependencies are built.

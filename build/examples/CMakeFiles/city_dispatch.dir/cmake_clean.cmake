file(REMOVE_RECURSE
  "CMakeFiles/city_dispatch.dir/city_dispatch.cpp.o"
  "CMakeFiles/city_dispatch.dir/city_dispatch.cpp.o.d"
  "city_dispatch"
  "city_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for grouped_dispatch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/grouped_dispatch.dir/grouped_dispatch.cpp.o"
  "CMakeFiles/grouped_dispatch.dir/grouped_dispatch.cpp.o.d"
  "grouped_dispatch"
  "grouped_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grouped_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

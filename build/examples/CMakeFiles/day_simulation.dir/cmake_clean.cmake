file(REMOVE_RECURSE
  "CMakeFiles/day_simulation.dir/day_simulation.cpp.o"
  "CMakeFiles/day_simulation.dir/day_simulation.cpp.o.d"
  "day_simulation"
  "day_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/day_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for day_simulation.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ablation_groupk.
# This may be replaced when dependencies are built.

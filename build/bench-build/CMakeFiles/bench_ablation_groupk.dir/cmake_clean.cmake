file(REMOVE_RECURSE
  "../bench/bench_ablation_groupk"
  "../bench/bench_ablation_groupk.pdb"
  "CMakeFiles/bench_ablation_groupk.dir/bench_ablation_groupk.cc.o"
  "CMakeFiles/bench_ablation_groupk.dir/bench_ablation_groupk.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_groupk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_capacity_nyc.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig16_capacity_chicago.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig16_capacity_chicago"
  "../bench/bench_fig16_capacity_chicago.pdb"
  "CMakeFiles/bench_fig16_capacity_chicago.dir/bench_fig16_capacity_chicago.cc.o"
  "CMakeFiles/bench_fig16_capacity_chicago.dir/bench_fig16_capacity_chicago.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_capacity_chicago.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

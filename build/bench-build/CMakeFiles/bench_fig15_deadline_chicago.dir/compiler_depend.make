# Empty compiler generated dependencies file for bench_fig15_deadline_chicago.
# This may be replaced when dependencies are built.

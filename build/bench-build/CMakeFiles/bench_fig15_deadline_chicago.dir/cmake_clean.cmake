file(REMOVE_RECURSE
  "../bench/bench_fig15_deadline_chicago"
  "../bench/bench_fig15_deadline_chicago.pdb"
  "CMakeFiles/bench_fig15_deadline_chicago.dir/bench_fig15_deadline_chicago.cc.o"
  "CMakeFiles/bench_fig15_deadline_chicago.dir/bench_fig15_deadline_chicago.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_deadline_chicago.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

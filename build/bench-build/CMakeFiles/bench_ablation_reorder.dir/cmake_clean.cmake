file(REMOVE_RECURSE
  "../bench/bench_ablation_reorder"
  "../bench/bench_ablation_reorder.pdb"
  "CMakeFiles/bench_ablation_reorder.dir/bench_ablation_reorder.cc.o"
  "CMakeFiles/bench_ablation_reorder.dir/bench_ablation_reorder.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

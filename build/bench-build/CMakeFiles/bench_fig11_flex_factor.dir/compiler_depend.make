# Empty compiler generated dependencies file for bench_fig11_flex_factor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig11_flex_factor"
  "../bench/bench_fig11_flex_factor.pdb"
  "CMakeFiles/bench_fig11_flex_factor.dir/bench_fig11_flex_factor.cc.o"
  "CMakeFiles/bench_fig11_flex_factor.dir/bench_fig11_flex_factor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_flex_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

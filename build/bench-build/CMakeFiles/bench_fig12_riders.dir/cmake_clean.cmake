file(REMOVE_RECURSE
  "../bench/bench_fig12_riders"
  "../bench/bench_fig12_riders.pdb"
  "CMakeFiles/bench_fig12_riders.dir/bench_fig12_riders.cc.o"
  "CMakeFiles/bench_fig12_riders.dir/bench_fig12_riders.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_riders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_riders.
# This may be replaced when dependencies are built.

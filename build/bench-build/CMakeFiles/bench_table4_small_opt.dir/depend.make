# Empty dependencies file for bench_table4_small_opt.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig7_trip_distributions.
# This may be replaced when dependencies are built.

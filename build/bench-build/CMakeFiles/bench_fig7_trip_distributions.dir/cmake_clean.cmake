file(REMOVE_RECURSE
  "../bench/bench_fig7_trip_distributions"
  "../bench/bench_fig7_trip_distributions.pdb"
  "CMakeFiles/bench_fig7_trip_distributions.dir/bench_fig7_trip_distributions.cc.o"
  "CMakeFiles/bench_fig7_trip_distributions.dir/bench_fig7_trip_distributions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_trip_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

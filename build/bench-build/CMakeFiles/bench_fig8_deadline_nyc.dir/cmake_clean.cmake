file(REMOVE_RECURSE
  "../bench/bench_fig8_deadline_nyc"
  "../bench/bench_fig8_deadline_nyc.pdb"
  "CMakeFiles/bench_fig8_deadline_nyc.dir/bench_fig8_deadline_nyc.cc.o"
  "CMakeFiles/bench_fig8_deadline_nyc.dir/bench_fig8_deadline_nyc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_deadline_nyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_deadline_nyc.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8_deadline_nyc.cc" "bench-build/CMakeFiles/bench_fig8_deadline_nyc.dir/bench_fig8_deadline_nyc.cc.o" "gcc" "bench-build/CMakeFiles/bench_fig8_deadline_nyc.dir/bench_fig8_deadline_nyc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/urr_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_trips.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_social.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/urr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

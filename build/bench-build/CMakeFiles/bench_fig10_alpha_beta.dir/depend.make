# Empty dependencies file for bench_fig10_alpha_beta.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig13_vehicles"
  "../bench/bench_fig13_vehicles.pdb"
  "CMakeFiles/bench_fig13_vehicles.dir/bench_fig13_vehicles.cc.o"
  "CMakeFiles/bench_fig13_vehicles.dir/bench_fig13_vehicles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_vehicles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

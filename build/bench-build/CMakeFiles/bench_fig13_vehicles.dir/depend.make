# Empty dependencies file for bench_fig13_vehicles.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[urr_dispatch_help]=] "/root/repo/build/tools/urr_dispatch" "--help")
set_tests_properties([=[urr_dispatch_help]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[urr_dispatch_tiny]=] "/root/repo/build/tools/urr_dispatch" "--city" "chicago" "--nodes" "800" "--riders" "40" "--vehicles" "10" "--approach" "eg")
set_tests_properties([=[urr_dispatch_tiny]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[urr_dispatch_bad_flag]=] "/root/repo/build/tools/urr_dispatch" "--nonsense")
set_tests_properties([=[urr_dispatch_bad_flag]=] PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")

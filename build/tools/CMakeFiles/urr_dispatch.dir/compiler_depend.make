# Empty compiler generated dependencies file for urr_dispatch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/urr_dispatch.dir/urr_dispatch.cc.o"
  "CMakeFiles/urr_dispatch.dir/urr_dispatch.cc.o.d"
  "urr_dispatch"
  "urr_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/urr_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// The streaming engine's three replayability contracts (DESIGN.md Sec 8):
//   1. the serialized event log is byte-identical at any solver thread count,
//   2. W = 0 reproduces OnlineDispatcher decision for decision,
//   3. replaying a log's input events regenerates the log and fleet state.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "exp/harness.h"

namespace urr {
namespace {

ExperimentConfig SmallConfig(int num_threads) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  cfg.seed = 42;
  cfg.num_threads = num_threads;
  return cfg;
}

struct RunResult {
  std::string log;
  std::string fingerprint;
  int accepted = 0;
};

RunResult RunEngine(ExperimentWorld* world, const StreamingWorkload& workload,
                    const EngineConfig& config) {
  UtilityModel model(&workload.instance,
                     UtilityParams{world->config.alpha, world->config.beta});
  SolverContext ctx = world->Context();
  ctx.model = &model;
  DispatchEngine engine(&workload, &ctx, config);
  const Status st = engine.Run();
  EXPECT_TRUE(st.ok()) << st;
  return {engine.SerializedLog(), engine.SolutionFingerprint(),
          engine.metrics().total_accepted};
}

TEST(EngineDeterminismTest, LogIsByteIdenticalAcrossThreadCounts) {
  for (WindowSolver solver :
       {WindowSolver::kEfficientGreedy, WindowSolver::kBilateral}) {
    RunResult baseline;
    for (int threads : {1, 2, 8}) {
      auto world = BuildWorld(SmallConfig(threads));
      ASSERT_TRUE(world.ok()) << world.status();
      // Same seed at every thread count → the same workload.
      Rng rng((*world)->config.seed + 100);
      StreamingWorkloadOptions opt;
      opt.arrival_rate = 1.0;
      opt.cancel_fraction = 0.3;
      const StreamingWorkload workload =
          MakeStreamingWorkload((*world)->instance, opt, &rng);
      EngineConfig cfg;
      cfg.window = 20;
      cfg.solver = solver;
      const RunResult run = RunEngine(world->get(), workload, cfg);
      if (threads == 1) {
        baseline = run;
        EXPECT_FALSE(baseline.log.empty());
      } else {
        EXPECT_EQ(run.log, baseline.log)
            << WindowSolverName(solver) << " @ " << threads << " threads";
        EXPECT_EQ(run.fingerprint, baseline.fingerprint)
            << WindowSolverName(solver) << " @ " << threads << " threads";
      }
    }
  }
}

// Contract 4: the evaluation-path features — cross-window eval cache,
// zero-copy kernel, bound screening — are pure optimizations. Toggling any
// of them off must leave the event log and the final fleet state
// byte-identical, at 1, 2 and 8 threads, and the cache must actually
// score hits across windows when enabled.
TEST(EngineDeterminismTest, LogIsByteIdenticalAcrossEvalToggles) {
  for (WindowSolver solver :
       {WindowSolver::kEfficientGreedy, WindowSolver::kBilateral}) {
    RunResult baseline;
    bool have_baseline = false;
    for (int threads : {1, 2, 8}) {
      auto world = BuildWorld(SmallConfig(threads));
      ASSERT_TRUE(world.ok()) << world.status();
      Rng rng((*world)->config.seed + 100);
      StreamingWorkloadOptions opt;
      opt.arrival_rate = 1.0;
      opt.cancel_fraction = 0.3;
      const StreamingWorkload workload =
          MakeStreamingWorkload((*world)->instance, opt, &rng);
      struct Toggle {
        bool cache, zero_copy, screen;
      };
      for (const Toggle& t : {Toggle{false, false, false},
                              Toggle{true, false, false},
                              Toggle{false, true, true},
                              Toggle{true, true, true}}) {
        SCOPED_TRACE(std::string(WindowSolverName(solver)) + " threads=" +
                     std::to_string(threads) + " cache=" +
                     std::to_string(t.cache) + " zc=" +
                     std::to_string(t.zero_copy) + " screen=" +
                     std::to_string(t.screen));
        UtilityModel model(
            &workload.instance,
            UtilityParams{(*world)->config.alpha, (*world)->config.beta});
        SolverContext ctx = (*world)->Context();
        ctx.model = &model;
        ctx.zero_copy_kernel = t.zero_copy;
        ctx.bound_screening = t.screen;
        EngineConfig cfg;
        cfg.window = 20;
        cfg.solver = solver;
        cfg.use_eval_cache = t.cache;
        DispatchEngine engine(&workload, &ctx, cfg);
        const Status st = engine.Run();
        ASSERT_TRUE(st.ok()) << st;
        const RunResult run = {engine.SerializedLog(),
                               engine.SolutionFingerprint(),
                               engine.metrics().total_accepted};
        if (!have_baseline) {
          baseline = run;
          have_baseline = true;
          EXPECT_FALSE(baseline.log.empty());
        } else {
          EXPECT_EQ(run.log, baseline.log);
          EXPECT_EQ(run.fingerprint, baseline.fingerprint);
        }
        if (t.cache) {
          // The queue of retried riders spans windows, so a multi-window run
          // must reuse cached evaluations.
          EXPECT_GT(engine.metrics().eval_cache_hits, 0);
        } else {
          EXPECT_EQ(engine.metrics().eval_cache_hits, 0);
        }
        EXPECT_GT(engine.metrics().kernel_evals, 0);
      }
    }
  }
}

TEST(EngineDeterminismTest, ZeroWindowMatchesOnlineDispatcher) {
  auto world = BuildWorld(SmallConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  // arrival_rate = 0: everyone arrives at t = now with unshifted deadlines,
  // so the workload instance equals the batch instance and the engine's
  // per-arrival path must reproduce OnlineDispatcher rider for rider.
  Rng rng(99);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = 0;
  const StreamingWorkload workload =
      MakeStreamingWorkload((*world)->instance, opt, &rng);
  for (OnlineObjective obj :
       {OnlineObjective::kUtilityGain, OnlineObjective::kMinCostIncrease}) {
    EngineConfig cfg;
    cfg.window = 0;
    cfg.online_objective = obj;
    UtilityModel model(&workload.instance,
                       UtilityParams{(*world)->config.alpha,
                                     (*world)->config.beta});
    SolverContext ectx = (*world)->Context();
    ectx.model = &model;
    DispatchEngine engine(&workload, &ectx, cfg);
    ASSERT_TRUE(engine.Run().ok());

    SolverContext octx = (*world)->Context();
    OnlineDispatcher dispatcher(&(*world)->instance, &octx, obj);
    std::vector<RiderId> order(workload.arrivals.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = workload.arrivals[i].rider;
    }
    const UrrSolution& online = dispatcher.DispatchAll(order);

    EXPECT_EQ(engine.metrics().total_accepted, dispatcher.num_accepted());
    EXPECT_EQ(engine.metrics().total_rejected, dispatcher.num_rejected());
    ASSERT_EQ(engine.solution().assignment.size(), online.assignment.size());
    for (size_t r = 0; r < online.assignment.size(); ++r) {
      EXPECT_EQ(engine.solution().assignment[r], online.assignment[r])
          << "rider " << r;
    }
  }
}

TEST(EngineDeterminismTest, ReplayFromLogReproducesTheRun) {
  auto world = BuildWorld(SmallConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  Rng rng((*world)->config.seed + 100);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = 0.8;
  opt.cancel_fraction = 0.4;
  const StreamingWorkload workload =
      MakeStreamingWorkload((*world)->instance, opt, &rng);
  EngineConfig cfg;
  cfg.window = 15;

  UtilityModel model(&workload.instance,
                     UtilityParams{(*world)->config.alpha,
                                   (*world)->config.beta});
  SolverContext ctx = (*world)->Context();
  ctx.model = &model;
  DispatchEngine first(&workload, &ctx, cfg);
  ASSERT_TRUE(first.Run().ok());

  // Rebuild the input from the log alone and run a fresh engine.
  const auto replay_input = WorkloadFromLog(workload, first.event_log());
  ASSERT_TRUE(replay_input.ok()) << replay_input.status();
  EXPECT_EQ(replay_input->arrivals.size(), workload.arrivals.size());
  EXPECT_EQ(replay_input->cancellations.size(),
            workload.cancellations.size());
  SolverContext ctx2 = (*world)->Context();
  ctx2.model = &model;
  DispatchEngine second(&*replay_input, &ctx2, cfg);
  ASSERT_TRUE(second.Run().ok());

  EXPECT_EQ(second.SerializedLog(), first.SerializedLog());
  EXPECT_EQ(second.SolutionFingerprint(), first.SolutionFingerprint());
}

TEST(EngineDeterminismTest, SerializedLogParsesBackToTheEventVector) {
  auto world = BuildWorld(SmallConfig(1));
  ASSERT_TRUE(world.ok()) << world.status();
  Rng rng(7);
  StreamingWorkloadOptions opt;
  opt.cancel_fraction = 0.2;
  const StreamingWorkload workload =
      MakeStreamingWorkload((*world)->instance, opt, &rng);
  UtilityModel model(&workload.instance,
                     UtilityParams{(*world)->config.alpha,
                                   (*world)->config.beta});
  SolverContext ctx = (*world)->Context();
  ctx.model = &model;
  EngineConfig cfg;
  cfg.window = 30;
  DispatchEngine engine(&workload, &ctx, cfg);
  ASSERT_TRUE(engine.Run().ok());
  const auto parsed = ParseEventLog(engine.SerializedLog());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, engine.event_log());
}

}  // namespace
}  // namespace urr

// Randomized cross-solver stress suite: many small random instances, every
// solver, and the invariants that must hold regardless of workload shape:
// valid schedules, consistent assignments, utility within the instance
// upper bound, OPT dominating the heuristics, and schedule surgery
// (RemoveRider) preserving validity.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.h"
#include "graph/generators.h"
#include "social/generators.h"
#include "spatial/vehicle_index.h"
#include "urr/urr.h"

namespace urr {
namespace {

struct StressWorld {
  RoadNetwork network;
  SocialGraph social;
  UrrInstance instance;
  std::unique_ptr<DijkstraOracle> oracle;
  std::unique_ptr<UtilityModel> model;
  std::unique_ptr<VehicleIndex> index;
  Rng rng{0};

  SolverContext Context() {
    SolverContext ctx;
    ctx.oracle = oracle.get();
    ctx.model = model.get();
    ctx.vehicle_index = index.get();
    ctx.rng = &rng;
    ctx.euclid_speed = network.MaxSpeed();
    return ctx;
  }
};

std::unique_ptr<StressWorld> MakeStressWorld(uint64_t seed, int riders,
                                             int vehicles, int capacity) {
  auto w = std::make_unique<StressWorld>();
  w->rng = Rng(seed);
  GridCityOptions gopt;
  gopt.width = 9;
  gopt.height = 9;
  gopt.keep_probability = 0.85;
  auto g = GenerateGridCity(gopt, &w->rng);
  EXPECT_TRUE(g.ok());
  w->network = *std::move(g);
  w->oracle = std::make_unique<DijkstraOracle>(w->network);

  SocialGenOptions sopt;
  sopt.num_users = 60;
  auto social = GeneratePowerLawFriends(sopt, &w->rng);
  EXPECT_TRUE(social.ok());
  w->social = *std::move(social);

  w->instance.network = &w->network;
  w->instance.social = &w->social;
  auto random_node = [&] {
    return static_cast<NodeId>(
        w->rng.UniformInt(0, w->network.num_nodes() - 1));
  };
  for (int i = 0; i < riders; ++i) {
    Rider r;
    r.source = random_node();
    do {
      r.destination = random_node();
    } while (r.destination == r.source);
    r.pickup_deadline = w->rng.Uniform(100, 2500);
    const Cost direct = w->oracle->Distance(r.source, r.destination);
    r.dropoff_deadline = r.pickup_deadline + direct * w->rng.Uniform(1.1, 2.5);
    r.user = static_cast<UserId>(w->rng.UniformInt(0, 59));
    w->instance.riders.push_back(r);
  }
  std::vector<NodeId> locations;
  for (int j = 0; j < vehicles; ++j) {
    const NodeId loc = random_node();
    w->instance.vehicles.push_back({loc, capacity});
    locations.push_back(loc);
  }
  for (int i = 0; i < riders; ++i) {
    for (int j = 0; j < vehicles; ++j) {
      w->instance.vehicle_utility.push_back(
          static_cast<float>(w->rng.Uniform()));
    }
  }
  w->model = std::make_unique<UtilityModel>(
      &w->instance,
      UtilityParams{w->rng.Uniform(0, 0.5), w->rng.Uniform(0, 0.5)});
  w->index = std::make_unique<VehicleIndex>(w->network, locations);
  return w;
}

class StressTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressTest, AllSolversKeepInvariants) {
  auto w = MakeStressWorld(GetParam(), /*riders=*/40, /*vehicles=*/8,
                           /*capacity=*/3);
  SolverContext ctx = w->Context();
  const double bound =
      UpperBoundUtility(w->instance, *w->model, ctx.vehicle_index);

  std::vector<std::pair<std::string, UrrSolution>> solutions;
  solutions.emplace_back("CF", SolveCostFirst(w->instance, &ctx));
  solutions.emplace_back("EG", SolveEfficientGreedy(w->instance, &ctx));
  solutions.emplace_back("BA", SolveBilateral(w->instance, &ctx));
  {
    GbsOptions gopt;
    gopt.k = 3;
    gopt.d_max = 200;
    auto gbs = SolveGbs(w->instance, &ctx, gopt);
    ASSERT_TRUE(gbs.ok()) << gbs.status();
    solutions.emplace_back("GBS", *std::move(gbs));
  }
  {
    OnlineDispatcher online(&w->instance, &ctx, OnlineObjective::kUtilityGain);
    std::vector<RiderId> order(w->instance.riders.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<RiderId>(i);
    }
    solutions.emplace_back("online", online.DispatchAll(order));
  }

  for (auto& [name, sol] : solutions) {
    ASSERT_TRUE(sol.Validate(w->instance).ok()) << name;
    const double utility = sol.TotalUtility(*w->model);
    EXPECT_GE(utility, 0) << name;
    EXPECT_LE(utility, bound + 1e-6) << name;
    const SolutionMetrics m = ComputeMetrics(w->instance, *w->model, sol);
    EXPECT_GE(m.mean_detour_sigma, 1.0 - 1e-9) << name;
    EXPECT_LE(m.max_onboard, 3) << name;
  }
}

TEST_P(StressTest, OptimalDominatesOnTinyInstances) {
  auto w = MakeStressWorld(GetParam() + 1000, /*riders=*/7, /*vehicles=*/3,
                           /*capacity=*/2);
  SolverContext ctx = w->Context();
  auto opt = SolveOptimal(w->instance, &ctx);
  ASSERT_TRUE(opt.ok()) << opt.status();
  const double best = opt->TotalUtility(*w->model);
  EXPECT_GE(best + 1e-9,
            SolveBilateral(w->instance, &ctx).TotalUtility(*w->model));
  EXPECT_GE(best + 1e-9,
            SolveEfficientGreedy(w->instance, &ctx).TotalUtility(*w->model));
}

TEST_P(StressTest, RemovingServedRidersKeepsSchedulesValid) {
  auto w = MakeStressWorld(GetParam() + 2000, /*riders=*/30, /*vehicles=*/6,
                           /*capacity=*/4);
  SolverContext ctx = w->Context();
  UrrSolution sol = SolveEfficientGreedy(w->instance, &ctx);
  ASSERT_TRUE(sol.Validate(w->instance).ok());
  // Cancel every third served rider; schedules must stay valid throughout
  // (removal only shortens trips, never breaks deadlines).
  int removed = 0;
  for (RiderId i = 0; i < w->instance.num_riders(); i += 3) {
    const int j = sol.assignment[static_cast<size_t>(i)];
    if (j < 0) continue;
    ASSERT_TRUE(sol.schedules[static_cast<size_t>(j)].RemoveRider(i).ok());
    sol.assignment[static_cast<size_t>(i)] = -1;
    ++removed;
    ASSERT_TRUE(sol.Validate(w->instance).ok()) << "after removing " << i;
  }
  EXPECT_GT(removed, 0);
}

TEST_P(StressTest, MultiThreadedSolvesAreDeterministic) {
  // One run per pool size, each on a freshly rebuilt world (same seed, so
  // the worlds and rng states are identical). 8 threads on any host —
  // oversubscribed or not — must reproduce the serial solution exactly,
  // and two 8-thread runs must reproduce each other.
  auto fingerprints = [&](int threads) {
    auto w = MakeStressWorld(GetParam() + 500, /*riders=*/40, /*vehicles=*/8,
                             /*capacity=*/3);
    SolverContext ctx = w->Context();
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) {
      pool = std::make_unique<ThreadPool>(threads);
      AttachThreadPool(&ctx, pool.get());
      EXPECT_NE(ctx.eval_pool(), nullptr);
    }
    std::vector<UrrSolution> sols;
    sols.push_back(SolveCostFirst(w->instance, &ctx));
    sols.push_back(SolveEfficientGreedy(w->instance, &ctx));
    sols.push_back(SolveBilateral(w->instance, &ctx));
    {
      GbsOptions gopt;
      gopt.k = 3;
      gopt.d_max = 200;
      gopt.use_group_filter_bound = true;  // enables the wave-parallel path
      auto gbs = SolveGbs(w->instance, &ctx, gopt);
      EXPECT_TRUE(gbs.ok()) << gbs.status();
      if (gbs.ok()) sols.push_back(*std::move(gbs));
    }
    std::vector<std::string> out;
    for (const UrrSolution& sol : sols) {
      EXPECT_TRUE(sol.Validate(w->instance).ok());
      std::ostringstream os;
      os << std::hexfloat;  // exact doubles: equality means bit-identity
      for (int a : sol.assignment) os << a << ',';
      os << '|' << sol.TotalCost() << '|' << sol.TotalUtility(*w->model);
      out.push_back(os.str());
    }
    return out;
  };
  const std::vector<std::string> serial = fingerprints(1);
  const std::vector<std::string> mt_first = fingerprints(8);
  const std::vector<std::string> mt_second = fingerprints(8);
  EXPECT_EQ(serial, mt_first);
  EXPECT_EQ(mt_first, mt_second);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

}  // namespace
}  // namespace urr

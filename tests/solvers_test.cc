// End-to-end tests of the three heuristics (CF, EG, BA) plus invariants that
// must hold for any solver output: valid schedules, consistent assignments,
// and the expected quality ordering on seeded workloads.
#include <gtest/gtest.h>

#include "exp/harness.h"
#include "urr/bilateral.h"
#include "urr/cost_first.h"
#include "urr/greedy.h"

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42,
                                            int riders = 120,
                                            int vehicles = 25) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 300;
  cfg.num_trip_records = 1500;
  cfg.num_riders = riders;
  cfg.num_vehicles = vehicles;
  cfg.seed = seed;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

TEST(SolversTest, CostFirstProducesValidSolution) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = SolveCostFirst(world->instance, &ctx);
  EXPECT_TRUE(sol.Validate(world->instance).ok());
  EXPECT_GT(sol.NumAssigned(), 0);
}

TEST(SolversTest, EfficientGreedyProducesValidSolution) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = SolveEfficientGreedy(world->instance, &ctx);
  EXPECT_TRUE(sol.Validate(world->instance).ok());
  EXPECT_GT(sol.NumAssigned(), 0);
  EXPECT_GT(sol.TotalUtility(world->model), 0);
}

TEST(SolversTest, BilateralProducesValidSolution) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = SolveBilateral(world->instance, &ctx);
  EXPECT_TRUE(sol.Validate(world->instance).ok());
  EXPECT_GT(sol.NumAssigned(), 0);
}

TEST(SolversTest, QualityOrderingHoldsOnSeededWorkloads) {
  // The paper's headline ordering: BA >= EG >= CF on overall utility.
  // Individual seeds can wobble, so require it on the aggregate of several.
  double ba = 0, eg = 0, cf = 0;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    auto world = SmallWorld(seed);
    SolverContext ctx = world->Context();
    cf += SolveCostFirst(world->instance, &ctx).TotalUtility(world->model);
    eg += SolveEfficientGreedy(world->instance, &ctx)
              .TotalUtility(world->model);
    ba += SolveBilateral(world->instance, &ctx).TotalUtility(world->model);
  }
  EXPECT_GT(eg, cf * 0.98);
  // BA's random processing order wobbles at this tiny scale; require it to
  // stay within a hair of EG on aggregate (it wins clearly at bench scale).
  EXPECT_GT(ba, eg * 0.95);
}

TEST(SolversTest, GreedyHonorsRiderSubset) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(world->instance, ctx.oracle);
  std::vector<RiderId> subset = {0, 1, 2, 3, 4};
  std::vector<int> vehicles;
  for (int j = 0; j < world->instance.num_vehicles(); ++j) {
    vehicles.push_back(j);
  }
  GreedyArrange(world->instance, &ctx, subset, vehicles,
                GreedyObjective::kUtilityEfficiency, &sol);
  for (int i = 5; i < world->instance.num_riders(); ++i) {
    EXPECT_EQ(sol.assignment[static_cast<size_t>(i)], -1);
  }
  EXPECT_TRUE(sol.Validate(world->instance).ok());
}

TEST(SolversTest, GreedyHonorsVehicleSubset) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(world->instance, ctx.oracle);
  std::vector<RiderId> riders;
  for (int i = 0; i < world->instance.num_riders(); ++i) riders.push_back(i);
  std::vector<int> vehicles = {0, 1};
  GreedyArrange(world->instance, &ctx, riders, vehicles,
                GreedyObjective::kUtilityEfficiency, &sol);
  for (size_t i = 0; i < sol.assignment.size(); ++i) {
    EXPECT_LE(sol.assignment[i], 1);
  }
  for (size_t j = 2; j < sol.schedules.size(); ++j) {
    EXPECT_TRUE(sol.schedules[j].empty());
  }
}

TEST(SolversTest, BilateralReplacementKeepsInvariants) {
  // Tight vehicle supply forces replacements; afterwards, the solution must
  // still be valid and every unassigned rider's absence explainable (no
  // crash, no double assignment).
  auto world = SmallWorld(7, /*riders=*/150, /*vehicles=*/6);
  SolverContext ctx = world->Context();
  UrrSolution sol = SolveBilateral(world->instance, &ctx);
  EXPECT_TRUE(sol.Validate(world->instance).ok());
  // No rider appears in two schedules.
  std::vector<int> seen(world->instance.riders.size(), 0);
  for (const TransferSequence& seq : sol.schedules) {
    for (RiderId i : seq.Riders()) ++seen[static_cast<size_t>(i)];
  }
  for (int count : seen) EXPECT_LE(count, 1);
}

TEST(SolversTest, CostFirstMinimizesCostPerAssignment) {
  // CF should serve its riders with travel cost per assignment no worse
  // than BA's (it optimizes exactly that).
  auto world = SmallWorld(11);
  SolverContext ctx = world->Context();
  UrrSolution cf = SolveCostFirst(world->instance, &ctx);
  UrrSolution ba = SolveBilateral(world->instance, &ctx);
  ASSERT_GT(cf.NumAssigned(), 0);
  ASSERT_GT(ba.NumAssigned(), 0);
  EXPECT_LE(cf.TotalCost() / cf.NumAssigned(),
            ba.TotalCost() / ba.NumAssigned() * 1.1);
}

TEST(SolversTest, DeterministicGivenSeed) {
  auto a = SmallWorld(5);
  auto b = SmallWorld(5);
  SolverContext ca = a->Context();
  SolverContext cb = b->Context();
  UrrSolution sa = SolveEfficientGreedy(a->instance, &ca);
  UrrSolution sb = SolveEfficientGreedy(b->instance, &cb);
  EXPECT_EQ(sa.assignment, sb.assignment);
  EXPECT_NEAR(sa.TotalUtility(a->model), sb.TotalUtility(b->model), 1e-9);
}

TEST(SolversTest, EmptyRiderSetIsNoop) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(world->instance, ctx.oracle);
  GreedyArrange(world->instance, &ctx, {}, {0, 1}, GreedyObjective::kCostFirst,
                &sol);
  BilateralArrange(world->instance, &ctx, {}, {0, 1}, &sol);
  EXPECT_EQ(sol.NumAssigned(), 0);
}

TEST(SolversTest, AssignedRidersAreSkipped) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(world->instance, ctx.oracle);
  std::vector<RiderId> riders;
  for (int i = 0; i < world->instance.num_riders(); ++i) riders.push_back(i);
  std::vector<int> vehicles;
  for (int j = 0; j < world->instance.num_vehicles(); ++j) {
    vehicles.push_back(j);
  }
  GreedyArrange(world->instance, &ctx, riders, vehicles,
                GreedyObjective::kUtilityEfficiency, &sol);
  const std::vector<int> first = sol.assignment;
  // Re-running over the same solution must not move anyone.
  GreedyArrange(world->instance, &ctx, riders, vehicles,
                GreedyObjective::kUtilityEfficiency, &sol);
  EXPECT_EQ(sol.assignment, first);
}

}  // namespace
}  // namespace urr

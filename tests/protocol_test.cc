#include "server/protocol.h"

#include <gtest/gtest.h>

#include <string>

#include "common/json_parser.h"

namespace urr {
namespace {

TEST(FrameTest, EncodePrefixesBigEndianLength) {
  const std::string f = EncodeFrame("abc");
  ASSERT_EQ(f.size(), 7u);
  EXPECT_EQ(static_cast<unsigned char>(f[0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(f[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(f[2]), 0);
  EXPECT_EQ(static_cast<unsigned char>(f[3]), 3);
  EXPECT_EQ(f.substr(4), "abc");
}

TEST(FrameTest, ReaderReassemblesByteAtATime) {
  // Any split point must work, including inside the 4-byte length prefix.
  const std::string frame = EncodeFrame("{\"op\":\"metrics\"}");
  FrameReader reader;
  std::string out;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.Feed(&frame[i], 1);
    EXPECT_EQ(reader.Poll(&out), FrameReader::Next::kNeedMore) << i;
  }
  reader.Feed(&frame[frame.size() - 1], 1);
  ASSERT_EQ(reader.Poll(&out), FrameReader::Next::kFrame);
  EXPECT_EQ(out, "{\"op\":\"metrics\"}");
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameTest, ReaderYieldsMultipleFramesFromOneFeed) {
  const std::string bytes = EncodeFrame("one") + EncodeFrame("two") +
                            EncodeFrame("");
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  std::string out;
  ASSERT_EQ(reader.Poll(&out), FrameReader::Next::kFrame);
  EXPECT_EQ(out, "one");
  ASSERT_EQ(reader.Poll(&out), FrameReader::Next::kFrame);
  EXPECT_EQ(out, "two");
  ASSERT_EQ(reader.Poll(&out), FrameReader::Next::kFrame);
  EXPECT_EQ(out, "");
  EXPECT_EQ(reader.Poll(&out), FrameReader::Next::kNeedMore);
}

TEST(FrameTest, TruncatedFrameStaysPending) {
  const std::string frame = EncodeFrame("payload");
  FrameReader reader;
  reader.Feed(frame.data(), frame.size() - 2);  // cut mid-payload
  std::string out;
  EXPECT_EQ(reader.Poll(&out), FrameReader::Next::kNeedMore);
  // Nonzero pending at EOF is how the server detects a truncated frame.
  EXPECT_GT(reader.pending_bytes(), 0u);
}

TEST(FrameTest, OversizedLengthIsRejectedBeforeBuffering) {
  // A length just past the cap must be refused even though no payload
  // bytes follow (the attack is the length itself).
  const uint32_t n = kMaxFrameBytes + 1;
  std::string bytes;
  bytes.push_back(static_cast<char>((n >> 24) & 0xff));
  bytes.push_back(static_cast<char>((n >> 16) & 0xff));
  bytes.push_back(static_cast<char>((n >> 8) & 0xff));
  bytes.push_back(static_cast<char>(n & 0xff));
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  std::string out;
  EXPECT_EQ(reader.Poll(&out), FrameReader::Next::kOversized);
  // A frame exactly at the cap is fine.
  FrameReader ok_reader;
  const std::string big(kMaxFrameBytes, 'x');
  const std::string ok = EncodeFrame(big);
  ok_reader.Feed(ok.data(), ok.size());
  ASSERT_EQ(ok_reader.Poll(&out), FrameReader::Next::kFrame);
  EXPECT_EQ(out.size(), big.size());
}

TEST(ParseRequestTest, ParsesEveryOp) {
  auto submit = ParseRequest(R"({"op":"submit_rider","rider":7,"time":12.5,"id":3})");
  ASSERT_TRUE(submit.ok()) << submit.status();
  EXPECT_EQ(submit->op, RequestOp::kSubmitRider);
  EXPECT_EQ(submit->rider, 7);
  EXPECT_EQ(submit->id, 3);
  EXPECT_TRUE(submit->has_time);
  EXPECT_DOUBLE_EQ(submit->time, 12.5);

  EXPECT_EQ(ParseRequest(R"({"op":"cancel_rider","rider":1})")->op,
            RequestOp::kCancelRider);
  EXPECT_EQ(ParseRequest(R"({"op":"query_status","rider":1})")->op,
            RequestOp::kQueryStatus);
  EXPECT_EQ(ParseRequest(R"({"op":"metrics"})")->op, RequestOp::kMetrics);
  EXPECT_EQ(ParseRequest(R"({"op":"workload"})")->op, RequestOp::kWorkload);
  EXPECT_EQ(ParseRequest(R"({"op":"tick","time":5})")->op, RequestOp::kTick);
  EXPECT_EQ(ParseRequest(R"({"op":"shutdown"})")->op, RequestOp::kShutdown);

  auto fault = ParseRequest(
      R"({"op":"inject_fault","kind":"edge_disrupt","a":3,"b":4,"factor":2})");
  ASSERT_TRUE(fault.ok()) << fault.status();
  EXPECT_EQ(fault->op, RequestOp::kInjectFault);
  EXPECT_EQ(fault->fault_kind, "edge_disrupt");
  EXPECT_EQ(fault->edge_a, 3);
  EXPECT_EQ(fault->edge_b, 4);
  EXPECT_DOUBLE_EQ(fault->factor, 2);
}

TEST(ParseRequestTest, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseRequest("not json").ok());
  EXPECT_FALSE(ParseRequest("[1,2]").ok());          // not an object
  EXPECT_FALSE(ParseRequest("{}").ok());             // missing op
  EXPECT_FALSE(ParseRequest(R"({"op":"fly"})").ok());  // unknown op
  EXPECT_FALSE(ParseRequest(R"({"op":5})").ok());    // op wrong type
  // submit/cancel/query need a numeric rider.
  EXPECT_FALSE(ParseRequest(R"({"op":"submit_rider"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"submit_rider","rider":"x"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"cancel_rider"})").ok());
  EXPECT_FALSE(ParseRequest(R"({"op":"query_status"})").ok());
  // time must be a number when present.
  EXPECT_FALSE(
      ParseRequest(R"({"op":"submit_rider","rider":1,"time":"soon"})").ok());
  // inject_fault kind-specific validation.
  EXPECT_FALSE(ParseRequest(R"({"op":"inject_fault"})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"inject_fault","kind":"meteor"})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"inject_fault","kind":"breakdown"})").ok());
  EXPECT_FALSE(
      ParseRequest(R"({"op":"inject_fault","kind":"edge_disrupt","a":1})")
          .ok());
}

TEST(ErrorResponseTest, CarriesIdCodeAndMessage) {
  auto v = ParseJson(ErrorResponse(9, 400, "bad \"frame\""));
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->GetInt("id", -2), 9);
  EXPECT_FALSE(v->GetBool("ok", true));
  EXPECT_EQ(v->GetInt("code", 0), 400);
  EXPECT_EQ(v->GetString("error", ""), "bad \"frame\"");
}

}  // namespace
}  // namespace urr

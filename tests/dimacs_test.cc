#include "graph/dimacs.h"

#include <gtest/gtest.h>

namespace urr {
namespace {

constexpr char kGr[] =
    "c tiny example\n"
    "p sp 3 3\n"
    "a 1 2 10\n"
    "a 2 3 20\n"
    "a 3 1 5\n";

constexpr char kCo[] =
    "c coords\n"
    "v 1 100 200\n"
    "v 2 110 210\n"
    "v 3 120 220\n";

TEST(DimacsTest, ParsesArcsOneBased) {
  auto g = ParseDimacs(kGr);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_DOUBLE_EQ(g->EdgeCost(0, 1), 10);
  EXPECT_DOUBLE_EQ(g->EdgeCost(2, 0), 5);
  EXPECT_FALSE(g->has_coords());
}

TEST(DimacsTest, ParsesCoordinates) {
  auto g = ParseDimacs(kGr, kCo);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->has_coords());
  EXPECT_DOUBLE_EQ(g->coord(0).x, 100);
  EXPECT_DOUBLE_EQ(g->coord(2).y, 220);
}

TEST(DimacsTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacs("a 1 2 3\n").ok());
  EXPECT_FALSE(ParseDimacs("c only comments\n").ok());
}

TEST(DimacsTest, RejectsArcCountMismatch) {
  EXPECT_FALSE(ParseDimacs("p sp 2 2\na 1 2 1\n").ok());
}

TEST(DimacsTest, RejectsOutOfRangeNode) {
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 1 3 1\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 0 1 1\n").ok());
}

TEST(DimacsTest, RejectsUnknownTag) {
  EXPECT_FALSE(ParseDimacs("p sp 1 0\nq nope\n").ok());
}

TEST(DimacsTest, RejectsNonSpProblem) {
  EXPECT_FALSE(ParseDimacs("p max 2 1\na 1 2 1\n").ok());
}

TEST(DimacsTest, ExportRoundTrips) {
  auto g = ParseDimacs(kGr);
  ASSERT_TRUE(g.ok());
  auto g2 = ParseDimacs(ToDimacsGr(*g));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_nodes(), g->num_nodes());
  EXPECT_EQ(g2->num_edges(), g->num_edges());
  EXPECT_DOUBLE_EQ(g2->EdgeCost(1, 2), 20);
}

TEST(DimacsTest, LoadMissingFileFails) {
  auto r = LoadDimacsFiles("/does/not/exist.gr");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace urr

#include "graph/dimacs.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace urr {
namespace {

constexpr char kGr[] =
    "c tiny example\n"
    "p sp 3 3\n"
    "a 1 2 10\n"
    "a 2 3 20\n"
    "a 3 1 5\n";

constexpr char kCo[] =
    "c coords\n"
    "v 1 100 200\n"
    "v 2 110 210\n"
    "v 3 120 220\n";

TEST(DimacsTest, ParsesArcsOneBased) {
  auto g = ParseDimacs(kGr);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_DOUBLE_EQ(g->EdgeCost(0, 1), 10);
  EXPECT_DOUBLE_EQ(g->EdgeCost(2, 0), 5);
  EXPECT_FALSE(g->has_coords());
}

TEST(DimacsTest, ParsesCoordinates) {
  auto g = ParseDimacs(kGr, kCo);
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->has_coords());
  EXPECT_DOUBLE_EQ(g->coord(0).x, 100);
  EXPECT_DOUBLE_EQ(g->coord(2).y, 220);
}

TEST(DimacsTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacs("a 1 2 3\n").ok());
  EXPECT_FALSE(ParseDimacs("c only comments\n").ok());
}

TEST(DimacsTest, RejectsArcCountMismatch) {
  EXPECT_FALSE(ParseDimacs("p sp 2 2\na 1 2 1\n").ok());
}

TEST(DimacsTest, RejectsOutOfRangeNode) {
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 1 3 1\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 0 1 1\n").ok());
}

TEST(DimacsTest, RejectsUnknownTag) {
  EXPECT_FALSE(ParseDimacs("p sp 1 0\nq nope\n").ok());
}

TEST(DimacsTest, RejectsNonSpProblem) {
  EXPECT_FALSE(ParseDimacs("p max 2 1\na 1 2 1\n").ok());
}

TEST(DimacsTest, ExportRoundTrips) {
  auto g = ParseDimacs(kGr);
  ASSERT_TRUE(g.ok());
  auto g2 = ParseDimacs(ToDimacsGr(*g));
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_nodes(), g->num_nodes());
  EXPECT_EQ(g2->num_edges(), g->num_edges());
  EXPECT_DOUBLE_EQ(g2->EdgeCost(1, 2), 20);
}

TEST(DimacsTest, LoadMissingFileFails) {
  auto r = LoadDimacsFiles("/does/not/exist.gr");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(DimacsTest, RejectsCorruptHeadersAndArcs) {
  // Declared sizes that must not drive allocations or casts.
  EXPECT_FALSE(ParseDimacs("p sp -1 0\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 2 -5\na 1 2 1\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 99999999999999 1\na 1 2 1\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 2 99999999999999\na 1 2 1\n").ok());
  // Duplicate problem line.
  EXPECT_FALSE(ParseDimacs("p sp 2 1\np sp 2 1\na 1 2 1\n").ok());
  // More arcs than declared.
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 1 2 1\na 2 1 1\n").ok());
  // Non-finite / negative costs.
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 1 2 inf\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 1 2 nan\n").ok());
  EXPECT_FALSE(ParseDimacs("p sp 2 1\na 1 2 -3\n").ok());
  // Corrupt coordinate sections.
  EXPECT_FALSE(ParseDimacs(kGr, "v 1 nan 0\n").ok());
  EXPECT_FALSE(ParseDimacs(kGr, "v 9 0 0\n").ok());
  EXPECT_FALSE(ParseDimacs(kGr, "x 1 0 0\n").ok());
}

// Property-style mutation sweep: every random corruption of a valid file —
// truncation, byte smashes, line deletion/duplication — must come back as a
// Status error or a successfully built network, never a crash or hang.
TEST(DimacsTest, SurvivesRandomMutations) {
  const std::string clean = std::string(kGr);
  std::mt19937_64 rng(123);
  auto rand_int = [&](size_t lo, size_t hi) {
    return lo + static_cast<size_t>(rng() % (hi - lo + 1));
  };
  int parsed_ok = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = clean;
    switch (trial % 4) {
      case 0:  // truncate at a random byte
        text.resize(rand_int(0, text.size()));
        break;
      case 1: {  // smash a random byte
        if (!text.empty()) {
          text[rand_int(0, text.size() - 1)] =
              static_cast<char>(rand_int(1, 255));
        }
        break;
      }
      case 2: {  // delete a random line
        const size_t start = text.find('\n', rand_int(0, text.size() - 1));
        if (start != std::string::npos) {
          const size_t end = text.find('\n', start + 1);
          text.erase(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
        }
        break;
      }
      default: {  // duplicate a random prefix chunk
        const size_t n = rand_int(0, text.size());
        text += text.substr(0, n);
        break;
      }
    }
    const auto result = ParseDimacs(text);
    if (result.ok()) ++parsed_ok;  // mutation happened to stay well-formed
  }
  // The loop's real assertion is "no crash"; sanity-check that some
  // mutants were actually rejected (i.e. mutations were not all no-ops).
  EXPECT_LT(parsed_ok, 400);
}

}  // namespace
}  // namespace urr

#include "sched/insertion.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

Result<RoadNetwork> LineCity() {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 6; ++v) {
    edges.push_back({v, v + 1, 10});
    edges.push_back({v + 1, v, 10});
  }
  return RoadNetwork::Build(6, edges);
}

class InsertionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = LineCity();
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
  }

  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
};

TEST_F(InsertionTest, InsertIntoEmptySchedule) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip trip{0, 2, 4, 100, 200};
  auto plan = FindBestInsertion(seq, trip);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->pickup_pos, 0);
  EXPECT_EQ(plan->dropoff_pos, 1);
  // 0->2 (20) + 2->4 (20).
  EXPECT_DOUBLE_EQ(plan->delta_cost, 40);
  ASSERT_TRUE(ApplyInsertion(&seq, trip, *plan).ok());
  EXPECT_TRUE(seq.Validate().ok());
  EXPECT_DOUBLE_EQ(seq.TotalCost(), 40);
}

TEST_F(InsertionTest, InfeasibleDeadline) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip trip{0, 5, 0, /*pickup_deadline=*/10, /*dropoff=*/20};  // needs 50
  auto plan = FindBestInsertion(seq, trip);
  EXPECT_EQ(plan.status().code(), StatusCode::kInfeasible);
}

TEST_F(InsertionTest, OnRouteRiderIsFree) {
  // Existing trip 0 -> 5; new rider 1 -> 3 lies exactly on the path.
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip first{0, 1, 5, 1e5, 1e6};
  ASSERT_TRUE(ArrangeSingleRider(&seq, first).ok());
  RiderTrip second{1, 2, 4, 1e5, 1e6};
  auto plan = FindBestInsertion(seq, second);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->delta_cost, 0, 1e-9);
}

TEST_F(InsertionTest, CapacityBlocksOverlap) {
  TransferSequence seq(0, 0, 1, oracle_.get());
  // Tight pickup deadline (15): rider 0 must be picked up first, so the new
  // rider can neither ride before (deadline 15 broken), during (capacity 1),
  // nor after (its own deadlines broken).
  RiderTrip first{0, 1, 5, 15, 1e6};
  ASSERT_TRUE(ArrangeSingleRider(&seq, first).ok());
  RiderTrip second{1, 2, 4, /*pickup=*/45, /*dropoff=*/60};
  auto plan = FindBestInsertion(seq, second);
  EXPECT_FALSE(plan.ok());
  // With loose deadlines the rider is served after the first dropoff.
  RiderTrip third{2, 2, 4, 1e5, 1e6};
  auto plan3 = FindBestInsertion(seq, third);
  ASSERT_TRUE(plan3.ok());
  EXPECT_EQ(plan3->pickup_pos, 2);  // after both stops of rider 0
}

TEST_F(InsertionTest, FlexTimeGuardsDownstreamDeadlines) {
  // Rider 0: 0 -> 3 with tight dropoff (arrival 30, deadline 32): only ~2
  // units of flex. Rider 1 wants a detour costing 20 -> must be rejected
  // in the middle, accepted at the end if deadlines allow.
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip first{0, 1, 3, 15, 32};
  ASSERT_TRUE(ArrangeSingleRider(&seq, first).ok());
  RiderTrip second{1, 2, 2, 1e5, 1e6};  // zero-length trip at node 2
  auto plan = FindBestInsertion(seq, second);
  ASSERT_TRUE(plan.ok());
  // Inserting node 2 between 1 and 3 costs 0 extra (on the path).
  EXPECT_NEAR(plan->delta_cost, 0, 1e-9);
}

TEST_F(InsertionTest, ApplyRejectsMalformedPlan) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip trip{0, 1, 2, 1e5, 1e6};
  EXPECT_FALSE(ApplyInsertion(&seq, trip, {2, 3, 0}).ok());   // beyond end
  EXPECT_FALSE(ApplyInsertion(&seq, trip, {0, 0, 0}).ok());   // drop <= pick
  EXPECT_FALSE(ApplyInsertion(&seq, trip, {-1, 1, 0}).ok());
}

TEST_F(InsertionTest, DeltaCostEqualsScheduleCostDelta) {
  TransferSequence seq(0, 0, 3, oracle_.get());
  Rng rng(121);
  for (int r = 0; r < 4; ++r) {
    RiderTrip trip{r, static_cast<NodeId>(rng.UniformInt(0, 5)),
                   static_cast<NodeId>(rng.UniformInt(0, 5)), 1e5, 1e6};
    if (trip.source == trip.destination) continue;
    const Cost before = seq.TotalCost();
    auto plan = ArrangeSingleRider(&seq, trip);
    ASSERT_TRUE(plan.ok());
    EXPECT_NEAR(seq.TotalCost() - before, plan->delta_cost, 1e-9);
    ASSERT_TRUE(seq.Validate().ok());
  }
}

// ---------------------------------------------------------------------------
// Property suite: on random city schedules, the pruned Algorithm-1 search
// must return exactly the brute-force minimum Δcost (and only fail when
// brute force fails).
// ---------------------------------------------------------------------------

struct PropertyParam {
  uint64_t seed;
  int capacity;
  double deadline_scale;  // tightness of rider deadlines
};

class InsertionPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(InsertionPropertyTest, MatchesBruteForce) {
  const PropertyParam param = GetParam();
  Rng rng(param.seed);
  GridCityOptions opt;
  opt.width = 9;
  opt.height = 9;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);

  auto random_node = [&] {
    return static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
  };

  int feasible_cases = 0;
  for (int trial = 0; trial < 60; ++trial) {
    TransferSequence seq(random_node(), 0, param.capacity, &oracle);
    // Grow a feasible schedule with up to 4 riders.
    const int base_riders = static_cast<int>(rng.UniformInt(0, 4));
    for (int r = 0; r < base_riders; ++r) {
      const NodeId s = random_node();
      const NodeId e = random_node();
      if (s == e) continue;
      const Cost direct = oracle.Distance(s, e);
      RiderTrip trip{100 + r, s, e,
                     seq.EndTime() + rng.Uniform(200, 2000) * param.deadline_scale,
                     0};
      trip.dropoff_deadline =
          trip.pickup_deadline + direct * rng.Uniform(1.2, 2.5);
      auto plan = FindBestInsertion(seq, trip);
      if (plan.ok()) {
        ASSERT_TRUE(ApplyInsertion(&seq, trip, *plan).ok());
      }
      ASSERT_TRUE(seq.Validate().ok());
    }
    // The rider under test.
    const NodeId s = random_node();
    const NodeId e = random_node();
    if (s == e) continue;
    const Cost direct = oracle.Distance(s, e);
    RiderTrip trip{7, s, e, rng.Uniform(100, 1500) * param.deadline_scale, 0};
    trip.dropoff_deadline =
        trip.pickup_deadline + direct * rng.Uniform(1.1, 2.0);

    auto fast = FindBestInsertion(seq, trip);
    auto brute = FindBestInsertionBruteForce(seq, trip);
    ASSERT_EQ(fast.ok(), brute.ok())
        << "feasibility disagreement at trial " << trial;
    if (!fast.ok()) continue;
    ++feasible_cases;
    EXPECT_NEAR(fast->delta_cost, brute->delta_cost, 1e-6)
        << "trial " << trial << " positions fast(" << fast->pickup_pos << ","
        << fast->dropoff_pos << ") brute(" << brute->pickup_pos << ","
        << brute->dropoff_pos << ")";
    // Applying the fast plan yields a valid schedule.
    TransferSequence applied = seq;
    ASSERT_TRUE(ApplyInsertion(&applied, trip, *fast).ok());
    EXPECT_TRUE(applied.Validate().ok());
  }
  // The sweep must exercise real insertions, not just infeasible cases.
  EXPECT_GT(feasible_cases, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InsertionPropertyTest,
    ::testing::Values(PropertyParam{1, 2, 1.0}, PropertyParam{2, 2, 0.5},
                      PropertyParam{3, 1, 1.0}, PropertyParam{4, 4, 1.5},
                      PropertyParam{5, 3, 0.3}, PropertyParam{6, 2, 3.0},
                      PropertyParam{7, 5, 1.0}, PropertyParam{8, 1, 0.5}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "cap" +
             std::to_string(info.param.capacity);
    });

}  // namespace
}  // namespace urr

#include "spatial/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

Result<RoadNetwork> SmallCity(Rng* rng) {
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  return GenerateGridCity(opt, rng);
}

TEST(GridIndexTest, RequiresCoordinates) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(GridIndex::Build(*g).ok());
}

TEST(GridIndexTest, RejectsBadCellCount) {
  Rng rng(61);
  auto g = SmallCity(&rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(GridIndex::Build(*g, 0).ok());
}

TEST(GridIndexTest, RangeQueryIsExact) {
  Rng rng(62);
  auto g = SmallCity(&rng);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::Build(*g, 64);
  ASSERT_TRUE(index.ok());
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId c = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const Coord center = g->coord(c);
    const double radius = rng.Uniform(0, 400);
    auto got = index->NodesWithinEuclidean(center, radius);
    std::sort(got.begin(), got.end());
    std::vector<NodeId> want;
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      if (EuclideanDistance(g->coord(v), center) <= radius) want.push_back(v);
    }
    EXPECT_EQ(got, want) << "center " << c << " radius " << radius;
  }
}

TEST(GridIndexTest, NegativeRadiusEmpty) {
  Rng rng(63);
  auto g = SmallCity(&rng);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::Build(*g);
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(index->NodesWithinEuclidean({0, 0}, -1).empty());
}

TEST(GridIndexTest, NearestNodeMatchesBruteForce) {
  Rng rng(64);
  auto g = SmallCity(&rng);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::Build(*g, 49);
  ASSERT_TRUE(index.ok());
  for (int trial = 0; trial < 50; ++trial) {
    const Coord q = {rng.Uniform(-100, 900), rng.Uniform(-100, 900)};
    const NodeId got = index->NearestNode(q);
    ASSERT_NE(got, kInvalidNode);
    double best = kInfiniteCost;
    for (NodeId v = 0; v < g->num_nodes(); ++v) {
      best = std::min(best, EuclideanDistance(g->coord(v), q));
    }
    EXPECT_NEAR(EuclideanDistance(g->coord(got), q), best, 1e-9);
  }
}

TEST(GridIndexTest, SingleNodeNetwork) {
  auto g = RoadNetwork::Build(1, {}, {{5, 5}});
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::Build(*g, 16);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NearestNode({100, 100}), 0);
  EXPECT_EQ(index->NodesWithinEuclidean({5, 5}, 1).size(), 1u);
}

}  // namespace
}  // namespace urr

#include "routing/contraction_hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "routing/bidirectional.h"
#include "routing/dijkstra.h"

namespace urr {
namespace {

TEST(ChTest, TinyLineGraph) {
  auto g = RoadNetwork::Build(4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}});
  ASSERT_TRUE(g.ok());
  auto ch = ContractionHierarchy::Build(*g);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  EXPECT_DOUBLE_EQ(q.Distance(0, 3), 6);
  EXPECT_DOUBLE_EQ(q.Distance(0, 0), 0);
  EXPECT_DOUBLE_EQ(q.Distance(3, 0), kInfiniteCost);
  EXPECT_EQ(q.num_queries(), 3);
}

TEST(ChTest, RanksAreAPermutation) {
  Rng rng(41);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto ch = ContractionHierarchy::Build(*g);
  ASSERT_TRUE(ch.ok());
  std::vector<bool> seen(static_cast<size_t>(g->num_nodes()), false);
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    const int32_t r = ch->rank(v);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, g->num_nodes());
    EXPECT_FALSE(seen[static_cast<size_t>(r)]);
    seen[static_cast<size_t>(r)] = true;
  }
}

/// EXPECT_NEAR chokes on (inf, inf); compare with explicit inf handling.
void ExpectDistanceEq(Cost got, Cost want, NodeId s, NodeId t) {
  if (want == kInfiniteCost || got == kInfiniteCost) {
    EXPECT_EQ(got, want) << s << " -> " << t;
  } else {
    EXPECT_NEAR(got, want, 1e-6) << s << " -> " << t;
  }
}

class ChOrderTest : public ::testing::TestWithParam<ChOrderStrategy> {};

TEST_P(ChOrderTest, MatchesDijkstraOnRandomGrid) {
  Rng rng(42);
  GridCityOptions opt;
  opt.width = 18;
  opt.height = 14;
  opt.keep_probability = 0.85;
  opt.arterial_fraction = 0.03;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  ChOptions copt;
  copt.order = GetParam();
  auto ch = ContractionHierarchy::Build(*g, copt);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  DijkstraEngine ref(*g);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    ExpectDistanceEq(q.Distance(s, t), ref.Distance(s, t), s, t);
  }
}

TEST_P(ChOrderTest, MatchesDijkstraOnDirectedGraph) {
  // Random sparse directed graph (no coordinate crutch for geometric order:
  // kGeometric falls back to priority when coords are missing via kAuto, so
  // build coords anyway but keep edges one-way).
  Rng rng(43);
  const NodeId n = 120;
  std::vector<Edge> edges;
  std::vector<Coord> coords(static_cast<size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    coords[static_cast<size_t>(v)] = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
  }
  for (NodeId v = 0; v < n; ++v) {
    for (int e = 0; e < 3; ++e) {
      const NodeId w = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (w != v) edges.push_back({v, w, rng.Uniform(1, 10)});
    }
  }
  auto g = RoadNetwork::Build(n, edges, coords);
  ASSERT_TRUE(g.ok());
  ChOptions copt;
  copt.order = GetParam();
  auto ch = ContractionHierarchy::Build(*g, copt);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  DijkstraEngine ref(*g);
  for (int trial = 0; trial < 400; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    ExpectDistanceEq(q.Distance(s, t), ref.Distance(s, t), s, t);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ChOrderTest,
                         ::testing::Values(ChOrderStrategy::kPriority,
                                           ChOrderStrategy::kGeometric),
                         [](const auto& info) {
                           return info.param == ChOrderStrategy::kPriority
                                      ? "Priority"
                                      : "Geometric";
                         });

TEST(ChTest, PathUnpacksToOriginalEdges) {
  Rng rng(45);
  GridCityOptions opt;
  opt.width = 15;
  opt.height = 12;
  opt.arterial_fraction = 0.05;  // shortcuts guaranteed interesting
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto ch = ContractionHierarchy::Build(*g);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  DijkstraEngine ref(*g);
  int nontrivial = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    std::vector<NodeId> path;
    const Cost d = q.Path(s, t, &path);
    const Cost want = ref.Distance(s, t);
    if (want == kInfiniteCost) {
      EXPECT_EQ(d, kInfiniteCost);
      EXPECT_TRUE(path.empty());
      continue;
    }
    ASSERT_NEAR(d, want, 1e-6) << s << " -> " << t;
    // The path must be a real walk in the original network whose edge
    // costs sum to the distance.
    ASSERT_GE(path.size(), 1u);
    EXPECT_EQ(path.front(), s);
    EXPECT_EQ(path.back(), t);
    Cost total = 0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      const Cost leg = g->EdgeCost(path[i], path[i + 1]);
      ASSERT_LT(leg, kInfiniteCost)
          << "no original edge " << path[i] << " -> " << path[i + 1];
      total += leg;
    }
    EXPECT_NEAR(total, want, 1e-6);
    if (path.size() > 3) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 30);  // the sweep must exercise real unpacking
}

TEST(ChTest, PathIdentityAndUnreachable) {
  auto g = RoadNetwork::Build(3, {{0, 1, 2}});
  ASSERT_TRUE(g.ok());
  auto ch = ContractionHierarchy::Build(*g);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  std::vector<NodeId> path;
  EXPECT_DOUBLE_EQ(q.Path(1, 1, &path), 0);
  EXPECT_EQ(path, (std::vector<NodeId>{1}));
  EXPECT_EQ(q.Path(1, 0, &path), kInfiniteCost);
  EXPECT_TRUE(path.empty());
  EXPECT_DOUBLE_EQ(q.Path(0, 1, &path), 2);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1}));
}

TEST(ChTest, HandlesParallelEdgesAndSelfLoops) {
  auto g = RoadNetwork::Build(3, {{0, 1, 5},
                                  {0, 1, 2},
                                  {1, 1, 1},
                                  {1, 2, 4},
                                  {1, 2, 7}});
  ASSERT_TRUE(g.ok());
  auto ch = ContractionHierarchy::Build(*g);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  EXPECT_DOUBLE_EQ(q.Distance(0, 2), 6);
}

TEST(ChTest, DisconnectedComponents) {
  auto g = RoadNetwork::Build(4, {{0, 1, 1}, {2, 3, 1}});
  ASSERT_TRUE(g.ok());
  auto ch = ContractionHierarchy::Build(*g);
  ASSERT_TRUE(ch.ok());
  ChQuery q(*ch);
  EXPECT_DOUBLE_EQ(q.Distance(0, 1), 1);
  EXPECT_EQ(q.Distance(0, 3), kInfiniteCost);
}

TEST(ChTest, RejectsBadOptions) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  ChOptions opt;
  opt.witness_settle_limit = 0;
  EXPECT_FALSE(ContractionHierarchy::Build(*g, opt).ok());
}

TEST(ChParallelTest, SerializedBytesIdenticalAcrossThreadCounts) {
  Rng rng(77);
  GridCityOptions opt;
  opt.width = 16;
  opt.height = 12;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());

  auto bytes_with_threads = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    ChOptions options;
    options.pool = pool.get();
    auto ch = ContractionHierarchy::Build(*g, options);
    EXPECT_TRUE(ch.ok());
    BinaryWriter writer;
    ch->Serialize(&writer);
    return writer.buffer();
  };

  const std::string serial = bytes_with_threads(1);
  ASSERT_FALSE(serial.empty());
  for (const int threads : {2, 8}) {
    EXPECT_EQ(bytes_with_threads(threads), serial)
        << "hierarchy built with " << threads
        << " threads must be bit-identical to the serial build";
  }
}

// Regression: simultaneous independent-set contraction with heavily tied
// edge costs. Two same-round winners can witness each other's shortcut at
// exactly equal cost; the round simulation must not let both suppress
// (witness comparison must be strict), or the path disappears entirely and
// queries silently overestimate.
TEST(ChParallelTest, ExactOnHeavilyTiedCosts) {
  Rng rng(20170512);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<Edge> edges = g->EdgeList();
  // Quantize coarsely: nearly every block edge collapses onto the same cost.
  for (Edge& e : edges) e.cost = std::max(1.0, std::round(e.cost / 16.0)) * 16.0;
  auto q = RoadNetwork::Build(g->num_nodes(), std::move(edges), g->coords());
  ASSERT_TRUE(q.ok());

  ChOptions options;
  options.order = ChOrderStrategy::kParallelRounds;
  auto ch = ContractionHierarchy::Build(*q, options);
  ASSERT_TRUE(ch.ok());
  ChQuery query(*ch);
  DijkstraEngine ref(*q);
  std::vector<NodeId> targets;
  for (NodeId t = 0; t < q->num_nodes(); t += 5) targets.push_back(t);
  for (NodeId s = 0; s < q->num_nodes(); s += 7) {
    const std::vector<Cost> want = ref.Distances(s, targets);
    for (size_t j = 0; j < targets.size(); ++j) {
      ExpectDistanceEq(query.Distance(s, targets[j]), want[j], s, targets[j]);
    }
  }
}

TEST(BidirectionalTest, MatchesDijkstra) {
  Rng rng(44);
  GridCityOptions opt;
  opt.width = 16;
  opt.height = 12;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  BidirectionalDijkstra bidi(*g);
  DijkstraEngine ref(*g);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    EXPECT_NEAR(bidi.Distance(s, t), ref.Distance(s, t), 1e-6);
  }
}

TEST(BidirectionalTest, UnreachableAndIdentity) {
  auto g = RoadNetwork::Build(3, {{0, 1, 2}});
  ASSERT_TRUE(g.ok());
  BidirectionalDijkstra bidi(*g);
  EXPECT_DOUBLE_EQ(bidi.Distance(0, 0), 0);
  EXPECT_DOUBLE_EQ(bidi.Distance(0, 1), 2);
  EXPECT_EQ(bidi.Distance(1, 0), kInfiniteCost);
  EXPECT_EQ(bidi.Distance(0, 2), kInfiniteCost);
}

}  // namespace
}  // namespace urr

#include "engine/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "exp/harness.h"

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  cfg.seed = seed;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

StreamingWorkload MakeWorkload(const ExperimentWorld& world,
                               double arrival_rate = 0.5,
                               double cancel_fraction = 0.0) {
  Rng rng(world.config.seed + 100);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = arrival_rate;
  opt.cancel_fraction = cancel_fraction;
  return MakeStreamingWorkload(world.instance, opt, &rng);
}

// Runs `workload` through a fresh engine with a model built over the
// workload's (deadline-shifted) instance, asserting success.
struct EngineRun {
  EngineRun(ExperimentWorld* world, const StreamingWorkload* workload,
            const EngineConfig& config)
      : model(&workload->instance,
              UtilityParams{world->config.alpha, world->config.beta}),
        ctx(world->Context()),
        engine((ctx.model = &model, workload), &ctx, config) {}
  UtilityModel model;
  SolverContext ctx;
  DispatchEngine engine;
};

TEST(EventTest, SerializeParseRoundTripsEveryType) {
  const EventType types[] = {
      EventType::kArrival,   EventType::kQueued,    EventType::kRejected,
      EventType::kAssigned,  EventType::kPickedUp,  EventType::kDroppedOff,
      EventType::kExpired,   EventType::kCancelRequested,
      EventType::kCancelled};
  for (EventType type : types) {
    const Event e{123.456789012345, type, 7, 3};
    const auto parsed = ParseEvent(SerializeEvent(e));
    ASSERT_TRUE(parsed.ok()) << EventTypeName(type);
    EXPECT_EQ(*parsed, e) << EventTypeName(type);
  }
}

TEST(EventTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseEvent("").ok());
  EXPECT_FALSE(ParseEvent("12.5").ok());
  EXPECT_FALSE(ParseEvent("12.5 not_an_event 0 1").ok());
  EXPECT_FALSE(ParseEvent("x arrival 0 1").ok());
}

TEST(EventTest, LogRoundTrips) {
  const std::vector<Event> log = {
      {0, EventType::kArrival, 0, -1},
      {0, EventType::kQueued, 0, -1},
      {10.25, EventType::kAssigned, 0, 4},
      {33.5, EventType::kPickedUp, 0, 4},
  };
  const auto parsed = ParseEventLog(SerializeEventLog(log));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(*parsed, log);
}

TEST(EngineMetricsTest, PercentileIsNearestRank) {
  EXPECT_EQ(Percentile({}, 50), 0);
  EXPECT_EQ(Percentile({7}, 0), 7);
  EXPECT_EQ(Percentile({4, 1, 3, 2}, 50), 2);   // sorted copy, rank ⌈.5·4⌉
  EXPECT_EQ(Percentile({4, 1, 3, 2}, 100), 4);
  EXPECT_EQ(Percentile({4, 1, 3, 2}, 95), 4);
}

TEST(EngineTest, LifecycleCountsAddUp) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world);
  EngineConfig cfg;
  cfg.window = 30;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const EngineMetrics& m = run.engine.metrics();
  EXPECT_EQ(m.total_arrivals, world->instance.num_riders());
  // No cancellations, unbounded queue: every arrival is eventually either
  // committed or expires at its pickup deadline.
  EXPECT_EQ(m.total_rejected, 0);
  EXPECT_EQ(m.total_accepted + m.total_expired, m.total_arrivals);
  // The final drain completes every committed ride.
  EXPECT_EQ(m.total_picked_up, m.total_accepted);
  EXPECT_EQ(m.total_dropped_off, m.total_accepted);
  EXPECT_GT(m.total_accepted, 0);
  EXPECT_GT(m.booked_utility, 0);
  EXPECT_GT(m.driven_cost, 0);
  EXPECT_EQ(m.pickup_waits.size(), static_cast<size_t>(m.total_picked_up));
  for (double w : m.pickup_waits) EXPECT_GE(w, 0);
  // Booked utility decomposes over riders.
  double sum = 0;
  for (double u : run.engine.booked_utilities()) sum += u;
  EXPECT_NEAR(sum, m.booked_utility, 1e-9);
}

TEST(EngineTest, EventLogTimesAreNonDecreasing) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0, 0.3);
  EngineConfig cfg;
  cfg.window = 20;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const std::vector<Event>& log = run.engine.event_log();
  ASSERT_FALSE(log.empty());
  for (size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].time, log[i - 1].time) << "at event " << i;
  }
}

TEST(EngineTest, ZeroWindowAnswersEveryArrivalOnTheSpot) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world);
  EngineConfig cfg;
  cfg.window = 0;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const EngineMetrics& m = run.engine.metrics();
  // Per-arrival dispatch never queues, so nothing can expire.
  EXPECT_EQ(m.total_expired, 0);
  EXPECT_EQ(m.total_accepted + m.total_rejected, m.total_arrivals);
  for (const Event& e : run.engine.event_log()) {
    EXPECT_NE(e.type, EventType::kQueued);
    EXPECT_NE(e.type, EventType::kExpired);
  }
}

TEST(EngineTest, QueuedRidersExpireAtTheirPickupDeadline) {
  auto world = SmallWorld();
  StreamingWorkload workload = MakeWorkload(*world);
  // Collapse every pickup budget to nothing: the first window boundary
  // arrives long after all deadlines, so every rider must expire unserved.
  for (const RiderArrival& a : workload.arrivals) {
    Rider& r = workload.instance.riders[static_cast<size_t>(a.rider)];
    r.pickup_deadline = a.time + 0.001;
    r.dropoff_deadline = a.time + 0.002;
  }
  EngineConfig cfg;
  cfg.window = 1e6;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const EngineMetrics& m = run.engine.metrics();
  EXPECT_EQ(m.total_expired, m.total_arrivals);
  EXPECT_EQ(m.total_accepted, 0);
  EXPECT_EQ(run.engine.booked_utility(), 0);
}

TEST(EngineTest, AdmissionControlRejectsQueueOverflow) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 5.0);
  EngineConfig cfg;
  cfg.window = 120;  // long window + fast arrivals → deep queue
  cfg.max_queue = 1;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const EngineMetrics& m = run.engine.metrics();
  EXPECT_GT(m.total_rejected, 0);
  const auto rejected = std::count_if(
      run.engine.event_log().begin(), run.engine.event_log().end(),
      [](const Event& e) { return e.type == EventType::kRejected; });
  EXPECT_EQ(rejected, m.total_rejected);
}

TEST(EngineTest, CancellationsReleaseBookedRiders) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 0.5, 0.5);
  ASSERT_FALSE(workload.cancellations.empty());
  EngineConfig cfg;
  cfg.window = 30;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const EngineMetrics& m = run.engine.metrics();
  const std::vector<Event>& log = run.engine.event_log();
  // Every injected request is logged, whether or not it took effect.
  const auto requested = std::count_if(
      log.begin(), log.end(),
      [](const Event& e) { return e.type == EventType::kCancelRequested; });
  EXPECT_EQ(requested, static_cast<long>(workload.cancellations.size()));
  const auto cancelled = std::count_if(
      log.begin(), log.end(),
      [](const Event& e) { return e.type == EventType::kCancelled; });
  EXPECT_EQ(cancelled, m.total_cancelled);
  // A cancelled rider's booking is released.
  for (const Event& e : log) {
    if (e.type == EventType::kCancelled) {
      EXPECT_EQ(run.engine.solution().assignment[static_cast<size_t>(e.rider)],
                -1);
      EXPECT_EQ(run.engine.booked_utilities()[static_cast<size_t>(e.rider)], 0);
    }
  }
}

TEST(EngineTest, WindowsTileTheArrivalSpan) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world);
  EngineConfig cfg;
  cfg.window = 25;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const EngineMetrics& m = run.engine.metrics();
  ASSERT_FALSE(m.windows.empty());
  int arrivals = 0;
  for (size_t i = 0; i < m.windows.size(); ++i) {
    const WindowMetrics& w = m.windows[i];
    EXPECT_NEAR(w.window_end - w.window_start, 25, 1e-9);
    if (i > 0) {
      EXPECT_GE(w.window_start, m.windows[i - 1].window_end - 1e-9);
    }
    EXPECT_GE(w.fleet_utilization, 0);
    EXPECT_LE(w.fleet_utilization, 1);
    arrivals += w.arrivals;
  }
  EXPECT_EQ(arrivals, m.total_arrivals);
  // One solve latency per window that had anyone queued.
  const auto solved = std::count_if(
      m.windows.begin(), m.windows.end(),
      [](const WindowMetrics& w) { return w.queue_depth > 0; });
  EXPECT_EQ(static_cast<long>(m.solve_latencies.size()), solved);
}

TEST(EngineTest, RunIsSingleShot) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world);
  EngineConfig cfg;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  EXPECT_FALSE(run.engine.Run().ok());
}

TEST(EngineTest, EverySolverRunsTheWorkload) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world);
  for (WindowSolver solver :
       {WindowSolver::kCostFirst, WindowSolver::kEfficientGreedy,
        WindowSolver::kBilateral, WindowSolver::kGbsEg, WindowSolver::kGbsBa}) {
    EngineConfig cfg;
    cfg.window = 40;
    cfg.solver = solver;
    cfg.gbs.k = 3;       // keep PrepareGbs cheap on the 1200-node city
    cfg.gbs.d_max = 250;
    EngineRun run(world.get(), &workload, cfg);
    ASSERT_TRUE(run.engine.Run().ok()) << WindowSolverName(solver);
    const EngineMetrics& m = run.engine.metrics();
    EXPECT_GT(m.total_accepted, 0) << WindowSolverName(solver);
    // The drain completes every accepted ride (the final schedules are fully
    // executed, so the solution is empty rather than Validate()-able).
    EXPECT_EQ(m.total_dropped_off, m.total_accepted)
        << WindowSolverName(solver);
  }
}

TEST(EngineTest, WindowSolverNamesRoundTrip) {
  for (WindowSolver solver :
       {WindowSolver::kCostFirst, WindowSolver::kEfficientGreedy,
        WindowSolver::kBilateral, WindowSolver::kGbsEg, WindowSolver::kGbsBa}) {
    WindowSolver parsed;
    ASSERT_TRUE(ParseWindowSolver(WindowSolverName(solver), &parsed));
    EXPECT_EQ(parsed, solver);
  }
  WindowSolver parsed;
  EXPECT_FALSE(ParseWindowSolver("nope", &parsed));
}

TEST(EngineTest, MetricsJsonCarriesTheCounters) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world);
  EngineConfig cfg;
  cfg.window = 30;
  EngineRun run(world.get(), &workload, cfg);
  ASSERT_TRUE(run.engine.Run().ok());
  const std::string json = EngineMetricsJson(run.engine.metrics(), true);
  for (const char* key :
       {"\"total_arrivals\"", "\"total_accepted\"", "\"total_expired\"",
        "\"booked_utility\"", "\"driven_cost\"", "\"pickup_wait_p95\"",
        "\"solve_latency_p95\"", "\"windows\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  const std::string flat = EngineMetricsJson(run.engine.metrics(), false);
  EXPECT_EQ(flat.find("\"windows\""), std::string::npos);
}

}  // namespace
}  // namespace urr

#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/table.h"

namespace urr {
namespace {

TEST(CsvTest, SplitsPlainLine) {
  auto f = SplitCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(CsvTest, SplitsQuotedFields) {
  auto f = SplitCsvLine("\"a,b\",c,\"he said \"\"hi\"\"\"");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a,b");
  EXPECT_EQ(f[1], "c");
  EXPECT_EQ(f[2], "he said \"hi\"");
}

TEST(CsvTest, EmptyFieldsPreserved) {
  auto f = SplitCsvLine("a,,c,");
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[1], "");
  EXPECT_EQ(f[3], "");
}

TEST(CsvTest, ParseRoundTrip) {
  CsvTable t;
  t.header = {"x", "name"};
  t.rows = {{"1", "alpha"}, {"2", "with,comma"}};
  auto parsed = ParseCsv(ToCsv(t));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, t.header);
  EXPECT_EQ(parsed->rows, t.rows);
}

TEST(CsvTest, ParseRejectsRaggedRows) {
  auto r = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, ParseRejectsEmpty) {
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, ColumnIndex) {
  CsvTable t;
  t.header = {"x", "y"};
  EXPECT_EQ(t.ColumnIndex("y"), 1);
  EXPECT_EQ(t.ColumnIndex("z"), -1);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable t;
  t.header = {"k", "v"};
  t.rows = {{"1", "one"}};
  const std::string path = ::testing::TempDir() + "/urr_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, t).ok());
  auto back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, t.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto r = ReadCsvFile("/nonexistent/path/x.csv");
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

}  // namespace
}  // namespace urr

// Contracts of the incremental spatio-temporal candidate index
// (DESIGN.md §14):
//   1. the Euclidean screen alone is a superset of the reverse-Dijkstra
//      prefilter set, and the screen + batched confirm recovers it exactly,
//   2. incremental Sync after schedule mutations answers queries
//      identically to a freshly built index,
//   3. an overlay-epoch change forces a full re-bucket,
//   4. the future (cell x slab) table answers window queries correctly
//      against a brute-force scan of the schedules.
#include "spatial/st_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exp/harness.h"
#include "urr/greedy.h"
#include "urr/solution.h"

namespace urr {
namespace {

ExperimentConfig TinyGridConfig() {
  ExperimentConfig cfg;
  cfg.city = CityKind::kGrid;
  cfg.grid_width = 10;
  cfg.grid_height = 8;
  // Quantized edge costs: oracle kinds agree bitwise, so the confirm stage
  // (oracle) and the baseline prefilter (internal Dijkstra) cannot disagree
  // on a boundary comparison.
  cfg.quantize = 1;
  cfg.num_social_users = 200;
  cfg.num_trip_records = 500;
  cfg.num_riders = 60;
  cfg.num_vehicles = 15;
  cfg.num_threads = 2;
  cfg.seed = 7;
  cfg.use_st_index = true;
  return cfg;
}

TEST(StIndexTest, BuildRequiresCoordinates) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}, {1, 0, 1}});
  ASSERT_TRUE(g.ok());
  ASSERT_FALSE(g->has_coords());
  EXPECT_FALSE(StIndex::Build(*g).ok());
}

TEST(StIndexTest, BuildRejectsNonPositiveSlab) {
  auto world = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world.ok()) << world.status();
  StIndex::Params params;
  params.slab_seconds = 0;
  EXPECT_FALSE(StIndex::Build((*world)->network, params).ok());
}

TEST(StIndexTest, ScreenIsSupersetAndConfirmIsExact) {
  auto world_or = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status();
  ExperimentWorld* world = world_or->get();
  ASSERT_NE(world->st_index, nullptr);
  const UrrInstance& instance = world->instance;
  SolverContext ctx = world->Context();

  // Exercise both an all-idle fleet and live schedules from a real solve.
  UrrSolution empty = MakeEmptySolution(instance, ctx.oracle);
  UrrSolution solved = SolveEfficientGreedy(instance, &ctx);
  ASSERT_GT(solved.NumAssigned(), 0);

  for (const UrrSolution* sol : {&empty, &solved}) {
    world->st_index->Sync(*ctx.vehicle_index, sol->schedules, ctx.eval_epoch);
    for (RiderId i = 0; i < instance.num_riders(); ++i) {
      const Rider& r = instance.riders[static_cast<size_t>(i)];
      const Cost budget = r.pickup_deadline - instance.now;
      const std::vector<int> baseline =
          ValidVehiclesForRider(instance, ctx.vehicle_index, i, nullptr);

      StIndex::ScreenResult screen;
      world->st_index->ScreenCandidates(instance.network->coord(r.source),
                                        budget, ctx.euclid_speed, &screen);
      const std::vector<int> survivors = screen.Flatten();
      // Lemma 3.1 prefilter ⊆ screen survivors (admissible lower bound).
      for (int j : baseline) {
        EXPECT_TRUE(
            std::binary_search(survivors.begin(), survivors.end(), j))
            << "rider " << i << " vehicle " << j
            << " passed Dijkstra but was screened out";
      }

      // Screen + batched confirm == the exact baseline set, same order.
      const std::vector<int> exact =
          CandidateVehiclesForRider(instance, &ctx, *sol, i, nullptr);
      EXPECT_EQ(exact, baseline) << "rider " << i;
    }
  }
  EXPECT_GT(ctx.retrieval_stats->confirmed.load(), 0);
}

TEST(StIndexTest, AllowedFilterMatchesBaseline) {
  auto world_or = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status();
  ExperimentWorld* world = world_or->get();
  ASSERT_NE(world->st_index, nullptr);
  const UrrInstance& instance = world->instance;
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(instance, ctx.oracle);

  std::vector<bool> allowed(instance.vehicles.size());
  for (size_t j = 0; j < allowed.size(); ++j) allowed[j] = (j % 2 == 0);
  for (RiderId i = 0; i < std::min(instance.num_riders(), 20); ++i) {
    EXPECT_EQ(CandidateVehiclesForRider(instance, &ctx, sol, i, &allowed),
              ValidVehiclesForRider(instance, ctx.vehicle_index, i, &allowed))
        << "rider " << i;
  }
}

TEST(StIndexTest, IncrementalSyncMatchesFreshBuild) {
  auto world_or = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status();
  ExperimentWorld* world = world_or->get();
  const UrrInstance& instance = world->instance;
  SolverContext ctx = world->Context();

  // Incrementally synced index: empty fleet first, then the solved fleet.
  auto incremental = StIndex::Build(world->network);
  ASSERT_TRUE(incremental.ok());
  UrrSolution empty = MakeEmptySolution(instance, ctx.oracle);
  incremental->Sync(*ctx.vehicle_index, empty.schedules, 0);
  UrrSolution solved = SolveEfficientGreedy(instance, &ctx);
  incremental->Sync(*ctx.vehicle_index, solved.schedules, 0);
  // Second sync over unchanged state re-buckets nothing.
  const int64_t resynced = incremental->sync_stats().resynced_vehicles;
  incremental->Sync(*ctx.vehicle_index, solved.schedules, 0);
  EXPECT_EQ(incremental->sync_stats().resynced_vehicles, resynced);

  // Freshly built index synced once against the final state.
  auto fresh = StIndex::Build(world->network);
  ASSERT_TRUE(fresh.ok());
  fresh->Sync(*ctx.vehicle_index, solved.schedules, 0);

  EXPECT_EQ(incremental->num_future_keys(), fresh->num_future_keys());
  for (RiderId i = 0; i < instance.num_riders(); ++i) {
    const Rider& r = instance.riders[static_cast<size_t>(i)];
    const Cost budget = r.pickup_deadline - instance.now;
    StIndex::ScreenResult a, b;
    incremental->ScreenCandidates(instance.network->coord(r.source), budget,
                                  ctx.euclid_speed, &a);
    fresh->ScreenCandidates(instance.network->coord(r.source), budget,
                            ctx.euclid_speed, &b);
    EXPECT_EQ(a.Flatten(), b.Flatten()) << "rider " << i;
  }
}

TEST(StIndexTest, EpochChangeForcesFullRebucket) {
  auto world_or = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status();
  ExperimentWorld* world = world_or->get();
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(world->instance, ctx.oracle);

  auto index = StIndex::Build(world->network);
  ASSERT_TRUE(index.ok());
  index->Sync(*ctx.vehicle_index, sol.schedules, /*epoch=*/1);
  EXPECT_EQ(index->sync_stats().epoch_rebuilds, 0);
  const int64_t after_first = index->sync_stats().resynced_vehicles;
  EXPECT_EQ(after_first,
            static_cast<int64_t>(world->instance.vehicles.size()));

  // Same epoch, unchanged fleet: nothing re-bucketed.
  index->Sync(*ctx.vehicle_index, sol.schedules, 1);
  EXPECT_EQ(index->sync_stats().resynced_vehicles, after_first);

  // New epoch: every vehicle re-bucketed even though nothing moved.
  index->Sync(*ctx.vehicle_index, sol.schedules, 2);
  EXPECT_EQ(index->sync_stats().epoch_rebuilds, 1);
  EXPECT_EQ(index->sync_stats().resynced_vehicles, 2 * after_first);
  EXPECT_EQ(index->epoch(), 2u);
}

TEST(StIndexTest, ScreenHandlesDegenerateBudgets) {
  auto world_or = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status();
  ExperimentWorld* world = world_or->get();
  SolverContext ctx = world->Context();
  UrrSolution sol = MakeEmptySolution(world->instance, ctx.oracle);
  world->st_index->Sync(*ctx.vehicle_index, sol.schedules, ctx.eval_epoch);

  const Coord& c = world->network.coord(0);
  StIndex::ScreenResult out;
  world->st_index->ScreenCandidates(c, /*budget=*/-1, ctx.euclid_speed, &out);
  EXPECT_TRUE(out.groups.empty());
  EXPECT_EQ(out.scanned, 0);
  // Budget 0 is valid: it keeps exactly the vehicles anchored at distance 0.
  world->st_index->ScreenCandidates(c, /*budget=*/0, ctx.euclid_speed, &out);
  for (int j : out.Flatten()) {
    EXPECT_DOUBLE_EQ(
        EuclideanDistance(world->network.coord(ctx.vehicle_index->location(j)),
                          c),
        0);
  }
}

TEST(StIndexTest, VehiclesNearInWindowMatchesBruteForce) {
  auto world_or = BuildWorld(TinyGridConfig());
  ASSERT_TRUE(world_or.ok()) << world_or.status();
  ExperimentWorld* world = world_or->get();
  const UrrInstance& instance = world->instance;
  SolverContext ctx = world->Context();
  UrrSolution solved = SolveEfficientGreedy(instance, &ctx);
  ASSERT_GT(solved.NumAssigned(), 0);
  world->st_index->Sync(*ctx.vehicle_index, solved.schedules, ctx.eval_epoch);
  EXPECT_GT(world->st_index->num_future_keys(), 0u);

  for (RiderId i = 0; i < std::min(instance.num_riders(), 10); ++i) {
    const Coord& center =
        instance.network->coord(instance.riders[static_cast<size_t>(i)].source);
    for (const auto& [radius, t0, t1] :
         {std::tuple<double, Cost, Cost>{400, 0, 600},
          std::tuple<double, Cost, Cost>{1500, 300, 1200},
          std::tuple<double, Cost, Cost>{0, 0, 1e9}}) {
      std::vector<int> want;
      for (size_t j = 0; j < solved.schedules.size(); ++j) {
        const TransferSequence& seq = solved.schedules[j];
        for (int u = 0; u < seq.num_stops(); ++u) {
          const Cost arr = seq.EarliestArrival(u);
          if (arr < t0 || arr > t1) continue;
          if (EuclideanDistance(
                  instance.network->coord(seq.stop(u).location), center) >
              radius) {
            continue;
          }
          want.push_back(static_cast<int>(j));
          break;
        }
      }
      EXPECT_EQ(world->st_index->VehiclesNearInWindow(center, radius, t0, t1),
                want)
          << "rider " << i << " radius " << radius;
    }
  }
  // Inverted window: empty.
  EXPECT_TRUE(world->st_index
                  ->VehiclesNearInWindow(instance.network->coord(0), 1e9,
                                         /*t0=*/100, /*t1=*/50)
                  .empty());
}

}  // namespace
}  // namespace urr

// Differential correctness of the DisruptionOverlay (DESIGN.md §10): every
// answer it serves while disruptions are active must be bit-identical to an
// exact Dijkstra run on the perturbed graph — across base oracle stacks
// (dijkstra, CH, caching, hub labels), clones, and disrupt/restore cycles.
#include "routing/disruption_overlay.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "graph/generators.h"
#include "routing/dijkstra.h"
#include "routing/distance_oracle.h"
#include "routing/hub_labels.h"

namespace urr {
namespace {

/// Ground truth: plain Dijkstra on a copy of the network with the
/// perturbation applied edge by edge.
RoadNetwork PerturbedCopy(const RoadNetwork& g, const DisruptionState& state) {
  std::vector<Edge> edges;
  for (const auto& [a, b, c] : g.EdgeList()) {
    const Cost pc = state.PerturbedCost(a, b, c);
    if (std::isinf(pc)) continue;  // closed
    edges.push_back({a, b, pc});
  }
  auto built = RoadNetwork::Build(g.num_nodes(), std::move(edges));
  EXPECT_TRUE(built.ok()) << built.status();
  RoadNetwork out = std::move(*built);
  return out;
}

RoadNetwork MakeCity(uint64_t seed) {
  Rng rng(seed);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  auto g = GenerateGridCity(opt, &rng);
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(*g);
}

void CheckAgainstGroundTruth(const RoadNetwork& g, DistanceOracle* base,
                             uint64_t seed) {
  auto state = std::make_shared<DisruptionState>(g);
  auto stats = std::make_shared<OverlayStats>();
  DisruptionOverlay overlay(base, g, state, stats);

  Rng rng(seed);
  const auto edge_list = g.EdgeList();
  ASSERT_FALSE(edge_list.empty());
  // Disrupt a handful of edges: closures and slowdowns mixed.
  std::vector<std::pair<NodeId, NodeId>> disrupted;
  for (int k = 0; k < 8; ++k) {
    const auto& [a, b, c] =
        edge_list[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(edge_list.size()) - 1))];
    const double factor = (k % 2 == 0) ? kInfiniteCost : 3.0 + k;
    state->Disrupt(a, b, factor);
    disrupted.push_back({a, b});
  }
  ASSERT_TRUE(state->active());

  const RoadNetwork perturbed = PerturbedCopy(g, *state);
  DijkstraOracle truth(perturbed);
  for (int q = 0; q < 300; ++q) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
    const Cost got = overlay.Distance(u, v);
    const Cost want = truth.Distance(u, v);
    if (std::isinf(want)) {
      EXPECT_TRUE(std::isinf(got)) << u << "->" << v;
    } else {
      EXPECT_DOUBLE_EQ(got, want) << u << "->" << v;
    }
  }
  EXPECT_GT(stats->queries.load(), 0);

  // A clone must serve the same answers (shared state, private scratch).
  std::unique_ptr<DistanceOracle> clone = overlay.Clone();
  if (clone != nullptr) {
    for (int q = 0; q < 50; ++q) {
      const NodeId u =
          static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
      const NodeId v =
          static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
      const Cost got = clone->Distance(u, v);
      const Cost want = truth.Distance(u, v);
      if (std::isinf(want)) {
        EXPECT_TRUE(std::isinf(got));
      } else {
        EXPECT_DOUBLE_EQ(got, want);
      }
    }
  }

  // After restoring everything the overlay must be an exact passthrough.
  for (const auto& [a, b] : disrupted) state->Restore(a, b);
  EXPECT_FALSE(state->active());
  for (int q = 0; q < 100; ++q) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
    const Cost got = overlay.Distance(u, v);
    const Cost want = base->Distance(u, v);
    if (std::isinf(want)) {
      EXPECT_TRUE(std::isinf(got));
    } else {
      EXPECT_DOUBLE_EQ(got, want);
    }
  }
}

TEST(DisruptionOverlayTest, MatchesPerturbedDijkstraOverDijkstraBase) {
  const RoadNetwork g = MakeCity(7);
  DijkstraOracle base(g);
  CheckAgainstGroundTruth(g, &base, 11);
}

TEST(DisruptionOverlayTest, MatchesPerturbedDijkstraOverChBase) {
  const RoadNetwork g = MakeCity(8);
  auto ch = ChOracle::Create(g);
  ASSERT_TRUE(ch.ok()) << ch.status();
  CheckAgainstGroundTruth(g, ch->get(), 12);
}

TEST(DisruptionOverlayTest, MatchesPerturbedDijkstraOverCachingBase) {
  const RoadNetwork g = MakeCity(9);
  DijkstraOracle inner(g);
  CachingOracle base(&inner);
  // Warm the cache on the clean graph first: cached clean distances must
  // never leak into perturbed answers.
  Rng rng(5);
  for (int q = 0; q < 200; ++q) {
    base.Distance(static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1)),
                  static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1)));
  }
  CheckAgainstGroundTruth(g, &base, 13);
}

TEST(DisruptionOverlayTest, MatchesPerturbedDijkstraOverHubLabelBase) {
  const RoadNetwork g = MakeCity(10);
  auto hl = HubLabelOracle::Create(g);
  ASSERT_TRUE(hl.ok()) << hl.status();
  CheckAgainstGroundTruth(g, hl->get(), 14);
}

TEST(DisruptionOverlayTest, EpochAdvancesOnEveryMutation) {
  const RoadNetwork g = MakeCity(11);
  DisruptionState state(g);
  EXPECT_EQ(state.epoch(), 0u);
  const auto edge_list = g.EdgeList();
  const auto& [a, b, c] = edge_list.front();
  state.Disrupt(a, b, 2.0);
  EXPECT_EQ(state.epoch(), 1u);
  state.Disrupt(a, b, 4.0);  // re-disrupt overwrites, still a mutation
  EXPECT_EQ(state.epoch(), 2u);
  state.Restore(a, b);
  EXPECT_EQ(state.epoch(), 3u);
  EXPECT_FALSE(state.active());
}

TEST(DisruptionOverlayTest, FactorsBelowOneAreClampedToWeightIncreases) {
  const RoadNetwork g = MakeCity(12);
  auto state = std::make_shared<DisruptionState>(g);
  auto stats = std::make_shared<OverlayStats>();
  DijkstraOracle base(g);
  DisruptionOverlay overlay(&base, g, state, stats);
  const auto edge_list = g.EdgeList();
  const auto& [a, b, c] = edge_list.front();
  state->Disrupt(a, b, 0.1);  // would be a speedup; must clamp to 1
  Rng rng(6);
  for (int q = 0; q < 100; ++q) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1));
    const Cost clean = base.Distance(u, v);
    const Cost got = overlay.Distance(u, v);
    if (std::isinf(clean)) {
      EXPECT_TRUE(std::isinf(got));
    } else {
      EXPECT_DOUBLE_EQ(got, clean);  // factor 1 == no perturbation
    }
  }
}

TEST(DisruptionOverlayTest, BatchPathsMatchScalarPath) {
  const RoadNetwork g = MakeCity(13);
  DijkstraOracle base(g);
  auto state = std::make_shared<DisruptionState>(g);
  auto stats = std::make_shared<OverlayStats>();
  DisruptionOverlay overlay(&base, g, state, stats);
  const auto edge_list = g.EdgeList();
  Rng rng(14);
  for (int k = 0; k < 5; ++k) {
    const auto& [a, b, c] =
        edge_list[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(edge_list.size()) - 1))];
    state->Disrupt(a, b, k % 2 == 0 ? kInfiniteCost : 5.0);
  }
  std::vector<NodeId> us, vs;
  for (int q = 0; q < 64; ++q) {
    us.push_back(static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1)));
    vs.push_back(static_cast<NodeId>(rng.UniformInt(0, g.num_nodes() - 1)));
  }
  std::vector<Cost> batch(us.size());
  overlay.BatchPairwise(us, vs, batch.data());
  for (size_t i = 0; i < us.size(); ++i) {
    const Cost scalar = overlay.Distance(us[i], vs[i]);
    if (std::isinf(scalar)) {
      EXPECT_TRUE(std::isinf(batch[i]));
    } else {
      EXPECT_DOUBLE_EQ(batch[i], scalar);
    }
  }
}

}  // namespace
}  // namespace urr

#include "trips/io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "graph/generators.h"
#include "trips/trip_generator.h"

namespace urr {
namespace {

TEST(TripsIoTest, NodeCsvRoundTrip) {
  TripRecords records = {{0, 3, 12.5, 600}, {2, 1, 0, 90.25}};
  CsvTable table = TripRecordsToCsv(records);
  EXPECT_EQ(table.rows.size(), 2u);
  auto back = TripRecordsFromCsv(table, /*num_nodes=*/4);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].pickup_node, 0);
  EXPECT_EQ((*back)[0].dropoff_node, 3);
  EXPECT_NEAR((*back)[0].pickup_time, 12.5, 1e-9);
  EXPECT_NEAR((*back)[1].duration, 90.25, 1e-9);
}

TEST(TripsIoTest, RejectsMissingColumns) {
  CsvTable table;
  table.header = {"pickup_node", "dropoff_node"};
  EXPECT_FALSE(TripRecordsFromCsv(table, 4).ok());
}

TEST(TripsIoTest, RejectsBadValues) {
  CsvTable table;
  table.header = {"pickup_node", "dropoff_node", "pickup_time", "duration"};
  table.rows = {{"0", "9", "0", "10"}};
  EXPECT_EQ(TripRecordsFromCsv(table, 4).status().code(),
            StatusCode::kOutOfRange);
  table.rows = {{"0", "1", "-5", "10"}};
  EXPECT_FALSE(TripRecordsFromCsv(table, 4).ok());
  table.rows = {{"x", "1", "0", "10"}};
  EXPECT_FALSE(TripRecordsFromCsv(table, 4).ok());
}

TEST(TripsIoTest, ExtraColumnsIgnored) {
  CsvTable table;
  table.header = {"vendor", "pickup_node", "dropoff_node", "pickup_time",
                  "duration"};
  table.rows = {{"acme", "1", "2", "3", "4"}};
  auto records = TripRecordsFromCsv(table, 4);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ((*records)[0].pickup_node, 1);
}

TEST(TripsIoTest, CoordCsvSnapsToNearestNode) {
  Rng rng(1);
  GridCityOptions opt;
  opt.width = 8;
  opt.height = 8;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto index = GridIndex::Build(*g);
  ASSERT_TRUE(index.ok());
  const Coord a = g->coord(3);
  const Coord b = g->coord(20);
  CsvTable table;
  table.header = {"pickup_x", "pickup_y", "dropoff_x", "dropoff_y",
                  "pickup_time", "duration"};
  table.rows = {{std::to_string(a.x + 0.5), std::to_string(a.y - 0.5),
                 std::to_string(b.x), std::to_string(b.y), "5", "300"}};
  auto records = TripRecordsFromCoordCsv(table, *index);
  ASSERT_TRUE(records.ok()) << records.status();
  EXPECT_EQ((*records)[0].pickup_node, 3);
  EXPECT_EQ((*records)[0].dropoff_node, 20);
}

TEST(TripsIoTest, FileRoundTripOfGeneratedWorkload) {
  Rng rng(2);
  GridCityOptions opt;
  opt.width = 15;
  opt.height = 15;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  TripGenOptions topt;
  topt.num_trips = 120;
  auto records = GenerateTrips(*g, topt, &rng);
  ASSERT_TRUE(records.ok());
  const std::string path = ::testing::TempDir() + "/urr_trips.csv";
  ASSERT_TRUE(WriteTripRecords(path, *records).ok());
  auto back = ReadTripRecords(path, g->num_nodes());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), records->size());
  for (size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ((*back)[i].pickup_node, (*records)[i].pickup_node);
    EXPECT_EQ((*back)[i].dropoff_node, (*records)[i].dropoff_node);
    EXPECT_NEAR((*back)[i].duration, (*records)[i].duration, 1e-3);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace urr

#include "sched/kinetic_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "sched/reorder.h"

namespace urr {
namespace {

Result<RoadNetwork> LineCity() {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 6; ++v) {
    edges.push_back({v, v + 1, 10});
    edges.push_back({v + 1, v, 10});
  }
  return RoadNetwork::Build(6, edges);
}

class KineticTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = LineCity();
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
  }
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
};

TEST_F(KineticTreeTest, EmptyTree) {
  KineticTree tree(0, 0, 2, oracle_.get());
  EXPECT_DOUBLE_EQ(tree.BestCost(), 0);
  EXPECT_TRUE(tree.BestSchedule().empty());
  EXPECT_EQ(tree.num_tree_nodes(), 0);
  EXPECT_EQ(tree.num_orderings(), 0);
  EXPECT_EQ(tree.num_riders(), 0);
}

TEST_F(KineticTreeTest, SingleRider) {
  KineticTree tree(0, 0, 2, oracle_.get());
  auto delta = tree.Insert({0, 2, 4, 1e5, 1e6});
  ASSERT_TRUE(delta.ok()) << delta.status();
  EXPECT_DOUBLE_EQ(*delta, 40);  // 0->2 + 2->4
  EXPECT_DOUBLE_EQ(tree.BestCost(), 40);
  const auto schedule = tree.BestSchedule();
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[0].location, 2);
  EXPECT_EQ(schedule[1].location, 4);
  EXPECT_EQ(tree.num_riders(), 1);
  EXPECT_EQ(tree.num_orderings(), 1);
}

TEST_F(KineticTreeTest, InfeasibleRiderLeavesTreeUntouched) {
  KineticTree tree(0, 0, 2, oracle_.get());
  ASSERT_TRUE(tree.Insert({0, 2, 4, 1e5, 1e6}).ok());
  const Cost cost = tree.BestCost();
  const int64_t nodes = tree.num_tree_nodes();
  auto bad = tree.Insert({1, 5, 0, /*pickup=*/5, /*dropoff=*/10});
  EXPECT_EQ(bad.status().code(), StatusCode::kInfeasible);
  EXPECT_DOUBLE_EQ(tree.BestCost(), cost);
  EXPECT_EQ(tree.num_tree_nodes(), nodes);
  EXPECT_EQ(tree.num_riders(), 1);
}

TEST_F(KineticTreeTest, BudgetExhaustionReported) {
  KineticTree tree(0, 0, 4, oracle_.get());
  ASSERT_TRUE(tree.Insert({0, 1, 3, 1e6, 1e7}).ok());
  ASSERT_TRUE(tree.Insert({1, 2, 4, 1e6, 1e7}).ok());
  auto r = tree.Insert({2, 0, 5, 1e6, 1e7}, /*max_nodes=*/3);
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST_F(KineticTreeTest, KeepsAllOrderingsAndGloballyBestSchedule) {
  // Two compatible riders on a line: multiple interleavings are valid; the
  // tree's best must match the exact reordering search from scratch.
  KineticTree tree(0, 0, 2, oracle_.get());
  ASSERT_TRUE(tree.Insert({0, 1, 4, 1e6, 1e7}).ok());
  ASSERT_TRUE(tree.Insert({1, 2, 3, 1e6, 1e7}).ok());
  EXPECT_GT(tree.num_orderings(), 1);

  // Reference: Algorithm-1-free exact search over the same two riders.
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip first{0, 1, 4, 1e6, 1e7};
  ASSERT_TRUE(ArrangeSingleRider(&seq, first).ok());
  auto exact = FindBestInsertionWithReordering(seq, {1, 2, 3, 1e6, 1e7});
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(tree.BestCost(), exact->total_cost, 1e-9);
}

TEST_F(KineticTreeTest, BestScheduleIsValidTransferSequence) {
  KineticTree tree(0, 0, 2, oracle_.get());
  ASSERT_TRUE(tree.Insert({0, 1, 4, 200, 400}).ok());
  ASSERT_TRUE(tree.Insert({1, 2, 5, 200, 400}).ok());
  const auto stops = tree.BestSchedule();
  TransferSequence seq(0, 0, 2, oracle_.get());
  for (size_t k = 0; k < stops.size(); ++k) {
    seq.InsertStop(static_cast<int>(k), stops[k]);
  }
  EXPECT_TRUE(seq.Validate().ok());
  EXPECT_NEAR(seq.TotalCost(), tree.BestCost(), 1e-9);
}

TEST_F(KineticTreeTest, CapacityPrunesOrderings) {
  // Capacity 1: the two riders' spans cannot overlap, so every stored
  // ordering serves them sequentially.
  KineticTree tree(0, 0, 1, oracle_.get());
  ASSERT_TRUE(tree.Insert({0, 1, 3, 1e6, 1e7}).ok());
  ASSERT_TRUE(tree.Insert({1, 2, 4, 1e6, 1e7}).ok());
  for (int trial = 0; trial < 1; ++trial) {
    const auto stops = tree.BestSchedule();
    TransferSequence seq(0, 0, 1, oracle_.get());
    for (size_t k = 0; k < stops.size(); ++k) {
      seq.InsertStop(static_cast<int>(k), stops[k]);
    }
    EXPECT_TRUE(seq.Validate().ok());
  }
}

class KineticPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KineticPropertyTest, MatchesReorderSearchOnRandomInstances) {
  // Property: after inserting riders one at a time, the kinetic tree's best
  // cost equals the exact branch-and-bound reordering applied to the same
  // rider set (both explore all orderings of the full stop multiset).
  Rng rng(GetParam());
  GridCityOptions opt;
  opt.width = 7;
  opt.height = 7;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  auto random_node = [&] {
    return static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
  };
  int nontrivial = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const NodeId start = random_node();
    KineticTree tree(start, 0, 2, &oracle);
    TransferSequence committed(start, 0, 2, &oracle);
    std::vector<RiderTrip> accepted;
    for (int r = 0; r < 3; ++r) {
      const NodeId s = random_node();
      const NodeId e = random_node();
      if (s == e) continue;
      RiderTrip trip{r, s, e, rng.Uniform(400, 2500), 0};
      trip.dropoff_deadline =
          trip.pickup_deadline + oracle.Distance(s, e) * rng.Uniform(1.3, 2.5);
      // Reference: exact reorder of (already accepted riders + this one).
      auto exact = FindBestInsertionWithReordering(committed, trip);
      auto kinetic = tree.Insert(trip);
      ASSERT_EQ(exact.ok(), kinetic.ok())
          << "feasibility disagreement, trial " << trial << " rider " << r;
      if (!kinetic.ok()) continue;
      EXPECT_NEAR(tree.BestCost(), exact->total_cost, 1e-6);
      // Keep the committed reference in sync: rebuild it as the exact best.
      committed = ApplyReorderPlan(committed, *exact);
      accepted.push_back(trip);
    }
    if (accepted.size() >= 2) ++nontrivial;
  }
  EXPECT_GT(nontrivial, 3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KineticPropertyTest,
                         ::testing::Values(31, 32, 33, 34));

}  // namespace
}  // namespace urr

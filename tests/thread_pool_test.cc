// ThreadPool unit tests: full coverage of the index space, worker-id
// contract, empty and trivial ranges, exception propagation, nested
// ParallelFor (must run inline, no deadlock), the serial num_threads=1
// path, and work stealing under skewed per-index costs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel_for.h"
#include "common/thread_pool.h"

namespace urr {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const int64_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int64_t i, int) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, EmptyAndNegativeRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](int64_t, int) { ++calls; });
  pool.ParallelFor(-5, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleIndexRunsInlineOnCaller) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen;
  int worker_seen = -1;
  pool.ParallelFor(1, [&](int64_t i, int worker) {
    EXPECT_EQ(i, 0);
    seen = std::this_thread::get_id();
    worker_seen = worker;
  });
  EXPECT_EQ(seen, caller);
  EXPECT_EQ(worker_seen, 0);
}

TEST(ThreadPoolTest, NumThreadsOneRunsInlineInOrder) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int64_t> order;
  pool.ParallelFor(100, [&](int64_t i, int worker) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, WorkerIdsAreInRangeAndStablePerThread) {
  ThreadPool pool(4);
  std::mutex mu;
  std::map<std::thread::id, std::set<int>> ids_per_thread;
  pool.ParallelFor(5000, [&](int64_t, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 4);
    std::lock_guard<std::mutex> lock(mu);
    ids_per_thread[std::this_thread::get_id()].insert(worker);
  });
  // A thread never changes its worker id mid-job.
  for (const auto& [tid, ids] : ids_per_thread) EXPECT_EQ(ids.size(), 1u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(1000,
                                [&](int64_t i, int) {
                                  if (i == 537) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  // The pool survives a failed job and runs the next one normally.
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, [&](int64_t i, int) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 100 * 99 / 2);
}

TEST(ThreadPoolTest, ExceptionOnCallerThreadPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(
                   4, [&](int64_t, int) { throw std::logic_error("all fail"); }),
               std::logic_error);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  pool.ParallelFor(64, [&](int64_t i, int outer_worker) {
    pool.ParallelFor(64, [&](int64_t j, int inner_worker) {
      // Nested bodies keep the enclosing worker's id, so per-worker scratch
      // stays private.
      EXPECT_EQ(inner_worker, outer_worker);
      hits[static_cast<size_t>(i * 64 + j)].fetch_add(
          1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SkewedWorkloadStillCoversEverything) {
  ThreadPool pool(4);
  const int64_t n = 200;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](int64_t i, int) {
    if (i < 8) {  // a few indices dominate: exercises stealing
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, CurrentWorkerIsZeroOutsideJobs) {
  EXPECT_EQ(ThreadPool::CurrentWorker(), 0);
}

TEST(ParallelForHelperTest, NullPoolRunsSerially) {
  std::vector<int64_t> order;
  ParallelFor(nullptr, 10, [&](int64_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ParallelForHelperTest, PoolOfOneRunsSerially) {
  ThreadPool pool(1);
  int calls = 0;
  ParallelFor(&pool, 7, [&](int64_t, int) { ++calls; });
  EXPECT_EQ(calls, 7);
}

TEST(ParallelForHelperTest, FansOutOnRealPool) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(512);
  ParallelFor(&pool, 512, [&](int64_t i, int) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace urr

#include "urr/gbs.h"

#include <gtest/gtest.h>

#include "exp/harness.h"
#include "urr/greedy.h"

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1500;
  cfg.num_social_users = 300;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 150;
  cfg.num_vehicles = 30;
  cfg.seed = seed;
  cfg.gbs.k = 3;
  cfg.gbs.d_max = 200;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

TEST(GbsTest, PreprocessProducesAreas) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  auto pre = PrepareGbs(world->instance, &ctx, world->config.gbs);
  ASSERT_TRUE(pre.ok()) << pre.status();
  EXPECT_EQ(pre->k, 3);
  EXPECT_GT(pre->areas.num_areas(), 1);
  EXPECT_LT(pre->areas.num_areas(), pre->split.network.num_nodes());
  // Split network extends the original one.
  EXPECT_GE(pre->split.network.num_nodes(), world->network.num_nodes());
  EXPECT_EQ(pre->split.original_num_nodes, world->network.num_nodes());
}

TEST(GbsTest, SolveWithBothBases) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  for (GbsBase base : {GbsBase::kEfficientGreedy, GbsBase::kBilateral}) {
    GbsOptions opt = world->config.gbs;
    opt.base = base;
    GbsStats stats;
    auto sol = SolveGbs(world->instance, &ctx, opt, &stats);
    ASSERT_TRUE(sol.ok()) << sol.status();
    EXPECT_TRUE(sol->Validate(world->instance).ok());
    EXPECT_GT(sol->NumAssigned(), 0);
    EXPECT_GT(stats.num_areas, 0);
    EXPECT_GT(stats.num_groups_solved, 0);
    EXPECT_EQ(stats.k_used, 3);
  }
}

TEST(GbsTest, ReusedPreprocessingGivesSameResult) {
  auto world = SmallWorld();
  GbsOptions opt = world->config.gbs;
  SolverContext ctx1 = world->Context();
  Rng rng1(99), rng2(99);
  ctx1.rng = &rng1;
  auto pre = PrepareGbs(world->instance, &ctx1, opt);
  ASSERT_TRUE(pre.ok());
  auto sol1 = SolveGbs(world->instance, &ctx1, opt, *pre);
  SolverContext ctx2 = world->Context();
  ctx2.rng = &rng2;
  auto sol2 = SolveGbs(world->instance, &ctx2, opt, *pre);
  ASSERT_TRUE(sol1.ok() && sol2.ok());
  EXPECT_EQ(sol1->assignment, sol2->assignment);
}

TEST(GbsTest, ClassifiesShortAndLongTrips) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  GbsOptions opt = world->config.gbs;
  opt.d_max = 100;  // tiny threshold -> most trips become long
  opt.k = 2;
  GbsStats stats;
  auto sol = SolveGbs(world->instance, &ctx, opt, &stats);
  ASSERT_TRUE(sol.ok());
  EXPECT_GT(stats.num_long_trips, world->instance.num_riders() / 2);
}

TEST(GbsTest, FinalPassNeverLosesAssignments) {
  auto world = SmallWorld(7);
  SolverContext ctx = world->Context();
  GbsOptions with = world->config.gbs;
  with.final_pass = true;
  GbsOptions without = world->config.gbs;
  without.final_pass = false;
  auto pre = PrepareGbs(world->instance, &ctx, with);
  ASSERT_TRUE(pre.ok());
  Rng rng1(5), rng2(5);
  SolverContext c1 = world->Context();
  c1.rng = &rng1;
  SolverContext c2 = world->Context();
  c2.rng = &rng2;
  auto sol_with = SolveGbs(world->instance, &c1, with, *pre);
  auto sol_without = SolveGbs(world->instance, &c2, without, *pre);
  ASSERT_TRUE(sol_with.ok() && sol_without.ok());
  EXPECT_GE(sol_with->NumAssigned(), sol_without->NumAssigned());
}

TEST(GbsTest, GroupFilterBoundVariantStaysValid) {
  auto world = SmallWorld(9);
  SolverContext ctx = world->Context();
  GbsOptions opt = world->config.gbs;
  opt.use_group_filter_bound = true;
  auto sol = SolveGbs(world->instance, &ctx, opt);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->Validate(world->instance).ok());
  EXPECT_GT(sol->NumAssigned(), 0);
}

TEST(GbsTest, AutoKPicksACandidate) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  GbsOptions opt = world->config.gbs;
  opt.auto_k = true;
  auto pre = PrepareGbs(world->instance, &ctx, opt);
  ASSERT_TRUE(pre.ok());
  EXPECT_GE(pre->k, 2);
  EXPECT_LE(pre->k, 8);
}

TEST(GbsTest, GroupOrderVariantsAllValid) {
  auto world = SmallWorld(13);
  SolverContext ctx = world->Context();
  auto pre = PrepareGbs(world->instance, &ctx, world->config.gbs);
  ASSERT_TRUE(pre.ok());
  for (GbsGroupOrder order :
       {GbsGroupOrder::kLargestFirst, GbsGroupOrder::kSmallestFirst,
        GbsGroupOrder::kRandom}) {
    GbsOptions opt = world->config.gbs;
    opt.group_order = order;
    auto sol = SolveGbs(world->instance, &ctx, opt, *pre);
    ASSERT_TRUE(sol.ok());
    EXPECT_TRUE(sol->Validate(world->instance).ok());
    EXPECT_GT(sol->NumAssigned(), 0);
  }
}

TEST(GbsTest, UtilityIsCompetitiveWithBase) {
  // GBS with a base method should land in the same utility ballpark as the
  // base run globally (the paper reports it equal or better).
  auto world = SmallWorld(21);
  SolverContext ctx = world->Context();
  GbsOptions opt = world->config.gbs;
  opt.base = GbsBase::kEfficientGreedy;
  auto gbs = SolveGbs(world->instance, &ctx, opt);
  ASSERT_TRUE(gbs.ok());
  UrrSolution eg = SolveEfficientGreedy(world->instance, &ctx);
  EXPECT_GT(gbs->TotalUtility(world->model),
            eg.TotalUtility(world->model) * 0.8);
}

}  // namespace
}  // namespace urr

// Serial-vs-parallel differential suite: every solver (CF, EG, BA, GBS+EG,
// GBS+EG with the group-filter bound — the wave-parallel path — and GBS+BA)
// must produce a byte-identical solution with 1, 2 and 8 evaluation
// threads: same assignment vector, same stop sequences, same total utility
// and travel cost down to the last bit. Covered on generator city graphs
// (via the experiment harness, CachingOracle over CH) and on grid graphs
// (hand-built world, DijkstraOracle, AttachThreadPool wiring), across
// varying capacities and deadline ranges.
//
// Oracle differential: on quantized-cost grids (every edge cost a multiple
// of 1/256, so path sums are exact in double arithmetic) the same solves
// must also be byte-identical across the dijkstra | ch | caching | hl
// oracle stacks, and the harness cities must stay thread-invariant under
// `oracle = "hl"`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>

#include "exp/harness.h"
#include "graph/generators.h"
#include "routing/hub_labels.h"
#include "routing/index_snapshot.h"
#include "urr/eval_cache.h"
#include "urr/urr.h"

namespace urr {
namespace {

/// Exact bit pattern of a double, so fingerprint equality means bit-identity
/// (an EXPECT_EQ on doubles would also pass for -0.0 vs 0.0 etc.).
std::string BitsOf(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

/// Full fingerprint of a solution: assignment, every stop of every
/// schedule, and the two aggregate metrics as raw bits.
std::string Fingerprint(const UrrSolution& sol, const UtilityModel& model) {
  std::ostringstream os;
  for (int a : sol.assignment) os << a << ',';
  os << '|';
  for (const TransferSequence& s : sol.schedules) {
    for (int u = 0; u < s.num_stops(); ++u) {
      const Stop& st = s.stop(u);
      os << st.rider << (st.type == StopType::kPickup ? 'p' : 'd')
         << st.location << ':' << BitsOf(st.deadline) << ';';
    }
    os << '/';
  }
  os << '|' << BitsOf(sol.TotalUtility(model)) << '|' << BitsOf(sol.TotalCost());
  return os.str();
}

enum class Variant { kCf, kEg, kBa, kGbsEg, kGbsEgFilter, kGbsBa };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kCf:
      return "CF";
    case Variant::kEg:
      return "EG";
    case Variant::kBa:
      return "BA";
    case Variant::kGbsEg:
      return "GBS+EG";
    case Variant::kGbsEgFilter:
      return "GBS+EG/filter";
    case Variant::kGbsBa:
      return "GBS+BA";
  }
  return "?";
}

UrrSolution SolveVariant(const UrrInstance& instance, SolverContext* ctx,
                         const GbsOptions& gbs, Variant v) {
  switch (v) {
    case Variant::kCf:
      return SolveCostFirst(instance, ctx);
    case Variant::kEg:
      return SolveEfficientGreedy(instance, ctx);
    case Variant::kBa:
      return SolveBilateral(instance, ctx);
    case Variant::kGbsEg:
    case Variant::kGbsEgFilter:
    case Variant::kGbsBa: {
      GbsOptions opt = gbs;
      opt.base =
          v == Variant::kGbsBa ? GbsBase::kBilateral : GbsBase::kEfficientGreedy;
      opt.use_group_filter_bound = v == Variant::kGbsEgFilter;
      auto sol = SolveGbs(instance, ctx, opt);
      EXPECT_TRUE(sol.ok()) << sol.status();
      return sol.ok() ? *std::move(sol) : UrrSolution{};
    }
  }
  return UrrSolution{};
}

const std::vector<Variant>& AllVariants() {
  static const std::vector<Variant> kAll = {
      Variant::kCf,    Variant::kEg,          Variant::kBa,
      Variant::kGbsEg, Variant::kGbsEgFilter, Variant::kGbsBa};
  return kAll;
}

// --- Harness-built generator cities (CachingOracle over CH). ---------------

/// One full solve on a freshly built world (fresh rng state for every
/// thread count, so the only varying input is the pool size).
std::string RunOnWorld(ExperimentConfig cfg, Variant v, int threads) {
  cfg.num_threads = threads;
  auto world_or = BuildWorld(cfg);
  EXPECT_TRUE(world_or.ok()) << world_or.status();
  if (!world_or.ok()) return "";
  auto world = *std::move(world_or);
  if (threads > 1) {
    // The harness must actually have wired the pool (CachingOracle over a
    // ChOracle is cloneable); otherwise the test would compare serial runs.
    EXPECT_NE(world->Context().eval_pool(), nullptr);
  }
  SolverContext ctx = world->Context();
  const UrrSolution sol = SolveVariant(world->instance, &ctx, cfg.gbs, v);
  EXPECT_TRUE(sol.Validate(world->instance).ok()) << VariantName(v);
  return Fingerprint(sol, world->model);
}

struct CityScenario {
  const char* name;
  ExperimentConfig cfg;
};

std::vector<CityScenario> CityScenarios() {
  std::vector<CityScenario> out;
  {
    ExperimentConfig cfg;
    cfg.city = CityKind::kNycLike;
    cfg.city_nodes = 800;
    cfg.num_social_users = 200;
    cfg.num_trip_records = 900;
    cfg.num_riders = 70;
    cfg.num_vehicles = 14;
    cfg.capacity = 3;
    cfg.seed = 42;
    cfg.gbs.k = 3;
    cfg.gbs.d_max = 200;
    out.push_back({"nyc-like", cfg});
  }
  {
    ExperimentConfig cfg;
    cfg.city = CityKind::kChicagoLike;
    cfg.city_nodes = 700;
    cfg.num_social_users = 150;
    cfg.num_trip_records = 800;
    cfg.num_riders = 50;
    cfg.num_vehicles = 10;
    cfg.capacity = 2;                // tighter seats
    cfg.rt_min_minutes = 5;          // tighter deadlines
    cfg.rt_max_minutes = 15;
    cfg.seed = 7;
    cfg.gbs.k = 2;
    cfg.gbs.d_max = 250;
    out.push_back({"chicago-like", cfg});
  }
  return out;
}

TEST(ParallelDifferentialTest, CityWorldsIdenticalAcrossThreadCounts) {
  for (const CityScenario& scenario : CityScenarios()) {
    for (Variant v : AllVariants()) {
      SCOPED_TRACE(std::string(scenario.name) + " / " + VariantName(v));
      const std::string serial = RunOnWorld(scenario.cfg, v, 1);
      ASSERT_FALSE(serial.empty());
      EXPECT_EQ(serial, RunOnWorld(scenario.cfg, v, 2));
      EXPECT_EQ(serial, RunOnWorld(scenario.cfg, v, 8));
    }
  }
}

// --- Hand-built grid worlds (DijkstraOracle + AttachThreadPool). -----------

struct GridWorld {
  RoadNetwork network;
  SocialGraph social;
  UrrInstance instance;
  std::unique_ptr<DijkstraOracle> oracle;
  std::unique_ptr<UtilityModel> model;
  std::unique_ptr<VehicleIndex> index;
  Rng rng{0};
};

std::unique_ptr<GridWorld> MakeGridWorld(uint64_t seed, int riders,
                                         int vehicles, int capacity,
                                         Cost deadline_lo, Cost deadline_hi,
                                         bool quantize = false) {
  auto w = std::make_unique<GridWorld>();
  w->rng = Rng(seed);
  GridCityOptions gopt;
  gopt.width = 11;
  gopt.height = 11;
  gopt.keep_probability = 0.9;
  auto g = GenerateGridCity(gopt, &w->rng);
  EXPECT_TRUE(g.ok());
  w->network = *std::move(g);
  if (quantize) {
    // Round every edge cost to a multiple of 1/256: path sums become exact
    // in double arithmetic, so every exact oracle returns identical bits.
    std::vector<Edge> edges = w->network.EdgeList();
    for (Edge& e : edges) e.cost = std::round(e.cost * 256.0) / 256.0;
    auto q = RoadNetwork::Build(w->network.num_nodes(), std::move(edges),
                                w->network.coords());
    EXPECT_TRUE(q.ok());
    w->network = *std::move(q);
  }
  w->oracle = std::make_unique<DijkstraOracle>(w->network);

  SocialGenOptions sopt;
  sopt.num_users = 80;
  auto social = GeneratePowerLawFriends(sopt, &w->rng);
  EXPECT_TRUE(social.ok());
  w->social = *std::move(social);

  w->instance.network = &w->network;
  w->instance.social = &w->social;
  auto random_node = [&] {
    return static_cast<NodeId>(
        w->rng.UniformInt(0, w->network.num_nodes() - 1));
  };
  for (int i = 0; i < riders; ++i) {
    Rider r;
    r.source = random_node();
    do {
      r.destination = random_node();
    } while (r.destination == r.source);
    r.pickup_deadline = w->rng.Uniform(deadline_lo, deadline_hi);
    const Cost direct = w->oracle->Distance(r.source, r.destination);
    r.dropoff_deadline = r.pickup_deadline + direct * w->rng.Uniform(1.2, 2.2);
    r.user = static_cast<UserId>(w->rng.UniformInt(0, 79));
    w->instance.riders.push_back(r);
  }
  std::vector<NodeId> locations;
  for (int j = 0; j < vehicles; ++j) {
    const NodeId loc = random_node();
    w->instance.vehicles.push_back({loc, capacity});
    locations.push_back(loc);
  }
  for (int i = 0; i < riders * vehicles; ++i) {
    w->instance.vehicle_utility.push_back(static_cast<float>(w->rng.Uniform()));
  }
  w->model = std::make_unique<UtilityModel>(&w->instance,
                                            UtilityParams{0.33, 0.33});
  w->index = std::make_unique<VehicleIndex>(w->network, locations);
  return w;
}

/// Evaluation-path feature switches for the toggle-matrix contracts. All
/// three are pure optimizations: any combination must give the same bits.
struct EvalToggles {
  bool zero_copy = true;
  bool screening = true;
  bool cache = false;  // an EvalCache is attached when true
};

std::string RunOnGrid(uint64_t seed, int riders, int vehicles, int capacity,
                      Cost deadline_lo, Cost deadline_hi, Variant v,
                      int threads, EvalToggles toggles = {}) {
  auto w = MakeGridWorld(seed, riders, vehicles, capacity, deadline_lo,
                         deadline_hi);
  SolverContext ctx;
  ctx.oracle = w->oracle.get();
  ctx.model = w->model.get();
  ctx.vehicle_index = w->index.get();
  ctx.rng = &w->rng;
  ctx.euclid_speed = w->network.MaxSpeed();
  ctx.zero_copy_kernel = toggles.zero_copy;
  ctx.bound_screening = toggles.screening;
  EvalCache cache;
  EvalCounters counters;
  if (toggles.cache) ctx.eval_cache = &cache;
  ctx.counters = &counters;
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    AttachThreadPool(&ctx, pool.get());
    EXPECT_NE(ctx.eval_pool(), nullptr);  // DijkstraOracle is cloneable
  }
  GbsOptions gbs;
  gbs.k = 3;
  gbs.d_max = 200;
  const UrrSolution sol = SolveVariant(w->instance, &ctx, gbs, v);
  EXPECT_TRUE(sol.Validate(w->instance).ok()) << VariantName(v);
  if (toggles.cache) {
    // The cache must actually have been exercised (hits + misses > 0) for
    // the toggle contract to mean anything.
    EXPECT_GT(counters.cache_hits.load() + counters.cache_misses.load(), 0)
        << VariantName(v);
  }
  return Fingerprint(sol, *w->model);
}

TEST(ParallelDifferentialTest, GridWorldsIdenticalAcrossThreadCounts) {
  struct GridScenario {
    uint64_t seed;
    int riders, vehicles, capacity;
    Cost deadline_lo, deadline_hi;
  };
  const std::vector<GridScenario> scenarios = {
      {11, 60, 12, 3, 200, 2000},   // roomy deadlines
      {23, 45, 9, 2, 100, 800},     // tight deadlines, small seats
      {37, 50, 8, 4, 300, 2500},    // high capacity
  };
  for (const GridScenario& s : scenarios) {
    for (Variant v : AllVariants()) {
      SCOPED_TRACE(std::string(VariantName(v)) + " seed=" +
                   std::to_string(s.seed));
      const std::string serial =
          RunOnGrid(s.seed, s.riders, s.vehicles, s.capacity, s.deadline_lo,
                    s.deadline_hi, v, 1);
      ASSERT_FALSE(serial.empty());
      EXPECT_EQ(serial, RunOnGrid(s.seed, s.riders, s.vehicles, s.capacity,
                                  s.deadline_lo, s.deadline_hi, v, 2));
      EXPECT_EQ(serial, RunOnGrid(s.seed, s.riders, s.vehicles, s.capacity,
                                  s.deadline_lo, s.deadline_hi, v, 8));
    }
  }
}

// The tentpole's exactness contract for the evaluation path: the zero-copy
// scratch kernel, the Euclidean bound screening and the (rider, vehicle,
// version) eval cache — individually and combined — give byte-identical
// solutions to the copy-based, unscreened, uncached baseline at 1, 2 and 8
// threads, for every solver.
TEST(ParallelDifferentialTest, GridWorldsIdenticalAcrossEvalToggles) {
  const uint64_t seed = 11;
  const int riders = 60, vehicles = 12, capacity = 3;
  const Cost lo = 200, hi = 2000;
  const std::vector<EvalToggles> matrix = {
      {/*zero_copy=*/true, /*screening=*/false, /*cache=*/false},
      {/*zero_copy=*/false, /*screening=*/true, /*cache=*/false},
      {/*zero_copy=*/false, /*screening=*/false, /*cache=*/true},
      {/*zero_copy=*/true, /*screening=*/true, /*cache=*/true},
  };
  for (Variant v : AllVariants()) {
    SCOPED_TRACE(VariantName(v));
    const std::string baseline =
        RunOnGrid(seed, riders, vehicles, capacity, lo, hi, v, 1,
                  {/*zero_copy=*/false, /*screening=*/false, /*cache=*/false});
    ASSERT_FALSE(baseline.empty());
    for (size_t m = 0; m < matrix.size(); ++m) {
      for (int threads : {1, 2, 8}) {
        SCOPED_TRACE("toggles=" + std::to_string(m) +
                     " threads=" + std::to_string(threads));
        EXPECT_EQ(baseline, RunOnGrid(seed, riders, vehicles, capacity, lo, hi,
                                      v, threads, matrix[m]));
      }
    }
  }
}

// --- Cross-oracle differential on quantized costs. -------------------------

/// Solve on a quantized grid world under an explicitly chosen oracle stack.
/// Instance generation always uses the world's DijkstraOracle, so the
/// instance is byte-identical regardless of which stack solves it.
std::string RunOnQuantizedGrid(uint64_t seed, int riders, int vehicles,
                               int capacity, Cost deadline_lo,
                               Cost deadline_hi, Variant v, OracleKind kind,
                               int threads) {
  auto w = MakeGridWorld(seed, riders, vehicles, capacity, deadline_lo,
                         deadline_hi, /*quantize=*/true);
  auto stack = BuildOracleStack(w->network, kind);
  EXPECT_TRUE(stack.ok()) << stack.status();
  if (!stack.ok()) return "";
  SolverContext ctx;
  ctx.oracle = stack->active;
  ctx.model = w->model.get();
  ctx.vehicle_index = w->index.get();
  ctx.rng = &w->rng;
  ctx.euclid_speed = w->network.MaxSpeed();
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads);
    AttachThreadPool(&ctx, pool.get());
    EXPECT_NE(ctx.eval_pool(), nullptr) << OracleKindName(kind);
  }
  GbsOptions gbs;
  gbs.k = 3;
  gbs.d_max = 200;
  const UrrSolution sol = SolveVariant(w->instance, &ctx, gbs, v);
  EXPECT_TRUE(sol.Validate(w->instance).ok()) << VariantName(v);
  return Fingerprint(sol, *w->model);
}

// The tentpole's exactness claim, end to end: with quantized edge costs the
// whole solver output — assignment, stops, utility and cost bits — is
// identical whichever oracle stack answers the distance queries, serial or
// batched, at any thread count.
TEST(ParallelDifferentialTest, QuantizedGridsIdenticalAcrossOracleKinds) {
  struct Scenario {
    uint64_t seed;
    int riders, vehicles, capacity;
    Cost deadline_lo, deadline_hi;
  };
  const std::vector<Scenario> scenarios = {
      {11, 40, 8, 3, 200, 2000},
      {23, 35, 7, 2, 100, 800},
  };
  for (const Scenario& s : scenarios) {
    for (Variant v : AllVariants()) {
      SCOPED_TRACE(std::string(VariantName(v)) + " seed=" +
                   std::to_string(s.seed));
      const std::string want =
          RunOnQuantizedGrid(s.seed, s.riders, s.vehicles, s.capacity,
                             s.deadline_lo, s.deadline_hi, v,
                             OracleKind::kDijkstra, 1);
      ASSERT_FALSE(want.empty());
      for (OracleKind kind : {OracleKind::kCh, OracleKind::kCachingCh,
                              OracleKind::kHubLabel}) {
        SCOPED_TRACE(OracleKindName(kind));
        EXPECT_EQ(want, RunOnQuantizedGrid(s.seed, s.riders, s.vehicles,
                                           s.capacity, s.deadline_lo,
                                           s.deadline_hi, v, kind, 1));
        EXPECT_EQ(want, RunOnQuantizedGrid(s.seed, s.riders, s.vehicles,
                                           s.capacity, s.deadline_lo,
                                           s.deadline_hi, v, kind, 8));
      }
    }
  }
}

// The harness cities stay thread-invariant when the hub-label stack answers
// all distance queries (batched wave evaluation included).
TEST(ParallelDifferentialTest, CityWorldsThreadInvariantUnderHubLabels) {
  for (CityScenario scenario : CityScenarios()) {
    scenario.cfg.oracle = "hl";
    for (Variant v : AllVariants()) {
      SCOPED_TRACE(std::string(scenario.name) + " / hl / " + VariantName(v));
      const std::string serial = RunOnWorld(scenario.cfg, v, 1);
      ASSERT_FALSE(serial.empty());
      EXPECT_EQ(serial, RunOnWorld(scenario.cfg, v, 8));
    }
  }
}

// --- Snapshot differential. ------------------------------------------------

// The .urrx encoding of a city-scale index is byte-identical whether the
// preprocessing ran serially or on 2 or 8 workers.
TEST(ParallelDifferentialTest, IndexSnapshotBytesIdenticalAcrossThreadCounts) {
  Rng rng(42);
  auto net = GenerateNycLike(800, &rng);
  ASSERT_TRUE(net.ok());
  auto bytes_with_threads = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    ChOptions options;
    options.pool = pool.get();
    auto snap = BuildIndexSnapshot(*net, options);
    EXPECT_TRUE(snap.ok()) << snap.status();
    return SerializeIndexSnapshot(*snap);
  };
  const std::string serial = bytes_with_threads(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(bytes_with_threads(2), serial);
  EXPECT_EQ(bytes_with_threads(8), serial);
}

// Full-pipeline differential for the snapshot load path: a harness world
// whose oracle stack comes from a loaded .urrx file must solve to the same
// bits as one that rebuilt the preprocessing from scratch, serial and
// parallel.
TEST(ParallelDifferentialTest, SnapshotLoadedWorldsIdenticalToFreshBuild) {
  for (const CityScenario& scenario : CityScenarios()) {
    // Build the snapshot for this scenario's network once.
    auto world_or = BuildWorld(scenario.cfg);
    ASSERT_TRUE(world_or.ok()) << world_or.status();
    auto snap = BuildIndexSnapshot((*world_or)->network);
    ASSERT_TRUE(snap.ok()) << snap.status();
    const std::string path = ::testing::TempDir() + "/" + scenario.name +
                             ".differential.urrx";
    ASSERT_TRUE(SaveIndexSnapshot(*snap, path).ok());

    ExperimentConfig loaded_cfg = scenario.cfg;
    loaded_cfg.index_snapshot = path;
    for (Variant v : {Variant::kEg, Variant::kGbsEgFilter}) {
      SCOPED_TRACE(std::string(scenario.name) + " / " + VariantName(v));
      const std::string fresh = RunOnWorld(scenario.cfg, v, 1);
      ASSERT_FALSE(fresh.empty());
      EXPECT_EQ(fresh, RunOnWorld(loaded_cfg, v, 1));
      EXPECT_EQ(fresh, RunOnWorld(loaded_cfg, v, 8));
    }
  }
}

// A snapshot of the wrong network must be rejected loudly, not silently
// produce distances for a different graph.
TEST(ParallelDifferentialTest, SnapshotForDifferentNetworkIsRejected) {
  Rng rng(5);
  auto other = GenerateNycLike(300, &rng);
  ASSERT_TRUE(other.ok());
  auto snap = BuildIndexSnapshot(*other);
  ASSERT_TRUE(snap.ok());
  const std::string path = ::testing::TempDir() + "/wrong-network.urrx";
  ASSERT_TRUE(SaveIndexSnapshot(*snap, path).ok());

  ExperimentConfig cfg = CityScenarios()[0].cfg;
  cfg.index_snapshot = path;
  auto world = BuildWorld(cfg);
  EXPECT_FALSE(world.ok());
}

// A pool whose oracle cannot clone must silently stay serial (and still be
// correct), never race on the shared oracle.
TEST(ParallelDifferentialTest, NonCloneableOracleStaysSerial) {
  struct Opaque : DistanceOracle {
    explicit Opaque(DistanceOracle* base) : base_(base) {}
    Cost Distance(NodeId u, NodeId v) override {
      ++num_calls_;
      return base_->Distance(u, v);
    }
    DistanceOracle* base_;
  };
  auto w = MakeGridWorld(5, 30, 6, 3, 200, 1500);
  Opaque opaque(w->oracle.get());
  SolverContext ctx;
  ctx.oracle = &opaque;
  ctx.model = w->model.get();
  ctx.vehicle_index = w->index.get();
  ctx.rng = &w->rng;
  ThreadPool pool(4);
  AttachThreadPool(&ctx, &pool);
  // The attach must refuse atomically: no pool, no partially filled
  // worker-oracle set left behind by the failed Clone().
  EXPECT_EQ(ctx.worker_set, nullptr);
  EXPECT_EQ(ctx.eval_pool(), nullptr);
  const UrrSolution sol = SolveEfficientGreedy(w->instance, &ctx);
  EXPECT_TRUE(sol.Validate(w->instance).ok());
  EXPECT_GT(opaque.num_calls(), 0);
}

}  // namespace
}  // namespace urr

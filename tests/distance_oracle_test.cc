#include "routing/distance_oracle.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

TEST(DistanceOracleTest, DijkstraOracleBasics) {
  auto g = RoadNetwork::Build(3, {{0, 1, 2}, {1, 2, 3}});
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 2), 5);
  EXPECT_DOUBLE_EQ(oracle.Distance(0, 0), 0);
  EXPECT_EQ(oracle.Distance(2, 0), kInfiniteCost);
  EXPECT_EQ(oracle.num_calls(), 3);
}

TEST(DistanceOracleTest, ChOracleMatchesDijkstraOracle) {
  Rng rng(51);
  GridCityOptions opt;
  opt.width = 14;
  opt.height = 14;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto ch = ChOracle::Create(*g);
  ASSERT_TRUE(ch.ok());
  DijkstraOracle ref(*g);
  for (int i = 0; i < 200; ++i) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    EXPECT_NEAR((*ch)->Distance(s, t), ref.Distance(s, t), 1e-6);
  }
}

TEST(DistanceOracleTest, CachingOracleHitsOnRepeat) {
  auto g = RoadNetwork::Build(3, {{0, 1, 2}, {1, 2, 3}});
  ASSERT_TRUE(g.ok());
  DijkstraOracle base(*g);
  CachingOracle cached(&base);
  EXPECT_DOUBLE_EQ(cached.Distance(0, 2), 5);
  EXPECT_DOUBLE_EQ(cached.Distance(0, 2), 5);
  EXPECT_DOUBLE_EQ(cached.Distance(0, 2), 5);
  EXPECT_EQ(base.num_calls(), 1);
  EXPECT_EQ(cached.num_hits(), 2);
  EXPECT_EQ(cached.num_misses(), 1);
}

TEST(DistanceOracleTest, CachingOracleDistinguishesDirection) {
  auto g = RoadNetwork::Build(2, {{0, 1, 2}});
  ASSERT_TRUE(g.ok());
  DijkstraOracle base(*g);
  CachingOracle cached(&base);
  EXPECT_DOUBLE_EQ(cached.Distance(0, 1), 2);
  EXPECT_EQ(cached.Distance(1, 0), kInfiniteCost);
  EXPECT_EQ(base.num_calls(), 2);  // (0,1) and (1,0) are different keys
}

TEST(DistanceOracleTest, CachingOracleFlushesAtCapacity) {
  auto g = RoadNetwork::Build(4, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}});
  ASSERT_TRUE(g.ok());
  DijkstraOracle base(*g);
  CachingOracle cached(&base, /*max_entries=*/2);
  cached.Distance(0, 1);
  cached.Distance(0, 2);
  cached.Distance(0, 3);  // triggers flush
  cached.Distance(0, 1);  // miss again after flush
  EXPECT_EQ(base.num_calls(), 4);
}

TEST(DistanceOracleTest, CachedValuesStayCorrect) {
  Rng rng(52);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle base(*g);
  DijkstraOracle ref(*g);
  CachingOracle cached(&base);
  for (int i = 0; i < 300; ++i) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, 20));
    EXPECT_DOUBLE_EQ(cached.Distance(s, t), ref.Distance(s, t));
  }
  EXPECT_GT(cached.num_hits(), 0);
}

// Adversarial stream of distinct pairs: the cache must honour max_entries at
// every step (no unbounded growth), through both the scalar and the batched
// query paths, while staying correct.
TEST(DistanceOracleTest, CachingOracleNeverExceedsCapacity) {
  Rng rng(53);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle base(*g);
  DijkstraOracle ref(*g);
  CachingOracle cached(&base, /*max_entries=*/8);
  EXPECT_EQ(cached.max_entries(), 8u);
  const NodeId n = g->num_nodes();
  for (int i = 0; i < 100; ++i) {
    // Every pair distinct: all misses, worst case for the eviction policy.
    const NodeId s = static_cast<NodeId>(i % n);
    const NodeId t = static_cast<NodeId>((i * 37 + 11) % n);
    EXPECT_DOUBLE_EQ(cached.Distance(s, t), ref.Distance(s, t));
    EXPECT_LE(cached.num_entries(), cached.max_entries()) << "step " << i;
  }
  // Batched rectangles go through the same insert-with-flush policy.
  std::vector<NodeId> sources, targets;
  for (int i = 0; i < 9; ++i) {
    sources.push_back(static_cast<NodeId>(rng.UniformInt(0, n - 1)));
    targets.push_back(static_cast<NodeId>(rng.UniformInt(0, n - 1)));
  }
  std::vector<Cost> out(sources.size() * targets.size());
  cached.BatchDistances(sources, targets, out.data());
  EXPECT_LE(cached.num_entries(), cached.max_entries());
  for (size_t i = 0; i < sources.size(); ++i) {
    for (size_t j = 0; j < targets.size(); ++j) {
      EXPECT_DOUBLE_EQ(out[i * targets.size() + j],
                       ref.Distance(sources[i], targets[j]));
    }
  }
}

}  // namespace
}  // namespace urr

#include "spatial/vehicle_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

TEST(VehicleIndexTest, FindsVehiclesWithinCost) {
  // Line 0 -1- 1 -2- 2 -3- 3, two-way.
  auto g = RoadNetwork::Build(4, {{0, 1, 1}, {1, 0, 1}, {1, 2, 2}, {2, 1, 2},
                                  {2, 3, 3}, {3, 2, 3}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0, 2, 3});  // vehicles 0,1,2
  auto got = index.VehiclesWithinCost(/*target=*/1, /*radius=*/2.5);
  std::sort(got.begin(), got.end(),
            [](const auto& a, const auto& b) { return a.vehicle < b.vehicle; });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].vehicle, 0);
  EXPECT_DOUBLE_EQ(got[0].distance, 1);
  EXPECT_EQ(got[1].vehicle, 1);
  EXPECT_DOUBLE_EQ(got[1].distance, 2);
}

TEST(VehicleIndexTest, RespectsEdgeDirection) {
  // 0 -> 1 only: vehicle at 1 cannot reach 0.
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {1});
  EXPECT_TRUE(index.VehiclesWithinCost(0, 100).empty());
  auto got = index.VehiclesWithinCost(1, 100);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_DOUBLE_EQ(got[0].distance, 0);
}

TEST(VehicleIndexTest, MultipleVehiclesSameNode) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}, {1, 0, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0, 0, 1});
  auto got = index.VehiclesWithinCost(1, 1.0);
  EXPECT_EQ(got.size(), 3u);
}

TEST(VehicleIndexTest, UpdateMovesVehicle) {
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0});
  EXPECT_EQ(index.location(0), 0);
  index.Update(0, 2);
  EXPECT_EQ(index.location(0), 2);
  auto near0 = index.VehiclesWithinCost(0, 1.0);
  EXPECT_TRUE(near0.empty());
  auto near2 = index.VehiclesWithinCost(2, 0.5);
  ASSERT_EQ(near2.size(), 1u);
  EXPECT_EQ(near2[0].vehicle, 0);
}

TEST(VehicleIndexTest, UpdateToCurrentNodeIsANoOp) {
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {1, 1});
  index.Update(0, 1);  // relocate to the node it already occupies
  EXPECT_EQ(index.location(0), 1);
  auto got = index.VehiclesWithinCost(1, 0.0);
  ASSERT_EQ(got.size(), 2u);  // both vehicles still present exactly once
  EXPECT_DOUBLE_EQ(got[0].distance, 0);
  EXPECT_DOUBLE_EQ(got[1].distance, 0);
}

TEST(VehicleIndexTest, UpdateOneOfSeveralVehiclesOnANode) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}, {1, 0, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0, 0, 0});
  index.Update(1, 1);  // the other two must stay at node 0
  std::vector<int> at0, at1;
  for (const auto& v : index.VehiclesWithinCost(0, 0.0)) {
    at0.push_back(v.vehicle);
  }
  for (const auto& v : index.VehiclesWithinCost(1, 0.0)) {
    at1.push_back(v.vehicle);
  }
  std::sort(at0.begin(), at0.end());
  EXPECT_EQ(at0, (std::vector<int>{0, 2}));
  EXPECT_EQ(at1, (std::vector<int>{1}));
}

TEST(VehicleIndexTest, RadiusZeroKeepsOnlyColocatedVehicles) {
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0, 1, 1});
  auto got = index.VehiclesWithinCost(1, 0.0);
  ASSERT_EQ(got.size(), 2u);
  for (const auto& v : got) {
    EXPECT_NE(v.vehicle, 0);
    EXPECT_DOUBLE_EQ(v.distance, 0);
  }
  EXPECT_TRUE(index.VehiclesWithinCost(2, -1.0).empty());
}

TEST(VehicleIndexTest, StationaryVehicleSurvivesOtherUpdates) {
  auto g = RoadNetwork::Build(4, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1},
                                  {2, 3, 1}, {3, 2, 1}});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0, 1});
  // Vehicle 1 roams; vehicle 0 never moves and must stay retrievable with
  // an exact distance after every churn step.
  for (NodeId node : {2, 3, 1, 0, 2}) {
    index.Update(1, node);
    EXPECT_EQ(index.location(0), 0);
    auto got = index.VehiclesWithinCost(0, 0.0);
    bool found = false;
    for (const auto& v : got) found |= (v.vehicle == 0);
    EXPECT_TRUE(found) << "after moving vehicle 1 to " << node;
  }
}

TEST(VehicleIndexTest, MatchesBruteForceOnRandomCity) {
  Rng rng(71);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  std::vector<NodeId> locations;
  for (int j = 0; j < 25; ++j) {
    locations.push_back(
        static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1)));
  }
  VehicleIndex index(*g, locations);
  DijkstraEngine engine(*g);
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId target =
        static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const Cost radius = rng.Uniform(0, 600);
    auto got = index.VehiclesWithinCost(target, radius);
    std::vector<int> got_ids;
    for (const auto& v : got) {
      got_ids.push_back(v.vehicle);
      // The reported distance must be the exact network distance.
      EXPECT_NEAR(v.distance, engine.Distance(locations[static_cast<size_t>(
                                  v.vehicle)], target), 1e-9);
    }
    std::sort(got_ids.begin(), got_ids.end());
    std::vector<int> want_ids;
    for (size_t j = 0; j < locations.size(); ++j) {
      if (engine.Distance(locations[j], target) <= radius) {
        want_ids.push_back(static_cast<int>(j));
      }
    }
    EXPECT_EQ(got_ids, want_ids);
  }
}

TEST(VehicleIndexTest, NumVehicles) {
  auto g = RoadNetwork::Build(1, {});
  ASSERT_TRUE(g.ok());
  VehicleIndex index(*g, {0, 0});
  EXPECT_EQ(index.num_vehicles(), 2);
}

}  // namespace
}  // namespace urr

#include "routing/dijkstra.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

RoadNetwork Line() {
  // 0 -1- 1 -2- 2 -3- 3 (one way).
  return *RoadNetwork::Build(4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}});
}

TEST(DijkstraTest, OneToAllDistances) {
  RoadNetwork g = Line();
  auto r = RunDijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[0], 0);
  EXPECT_DOUBLE_EQ(r.dist[1], 1);
  EXPECT_DOUBLE_EQ(r.dist[2], 3);
  EXPECT_DOUBLE_EQ(r.dist[3], 6);
}

TEST(DijkstraTest, UnreachableIsInfinite) {
  RoadNetwork g = Line();
  auto r = RunDijkstra(g, 3);  // one-way: nothing reachable from 3
  EXPECT_DOUBLE_EQ(r.dist[3], 0);
  EXPECT_EQ(r.dist[0], kInfiniteCost);
}

TEST(DijkstraTest, ReverseSearchUsesInEdges) {
  RoadNetwork g = Line();
  DijkstraOptions opt;
  opt.reverse = true;
  auto r = RunDijkstra(g, 3, opt);  // distances TO 3
  EXPECT_DOUBLE_EQ(r.dist[0], 6);
  EXPECT_DOUBLE_EQ(r.dist[2], 3);
}

TEST(DijkstraTest, RadiusBoundsSearch) {
  RoadNetwork g = Line();
  DijkstraOptions opt;
  opt.radius = 3;
  auto r = RunDijkstra(g, 0, opt);
  EXPECT_DOUBLE_EQ(r.dist[2], 3);
  EXPECT_EQ(r.dist[3], kInfiniteCost);  // beyond radius reported unreachable
}

TEST(DijkstraTest, PathReconstruction) {
  RoadNetwork g = *RoadNetwork::Build(
      4, {{0, 1, 1}, {1, 3, 5}, {0, 2, 2}, {2, 3, 2}});
  auto r = RunDijkstra(g, 0);
  EXPECT_DOUBLE_EQ(r.dist[3], 4);
  EXPECT_EQ(ReconstructPath(r, 0, 3), (std::vector<NodeId>{0, 2, 3}));
  EXPECT_EQ(ReconstructPath(r, 0, 0), (std::vector<NodeId>{0}));
}

TEST(DijkstraTest, PathToUnreachableIsEmpty) {
  RoadNetwork g = Line();
  auto r = RunDijkstra(g, 3);
  EXPECT_TRUE(ReconstructPath(r, 3, 0).empty());
}

TEST(DijkstraEngineTest, PointToPointMatchesOneToAll) {
  Rng rng(31);
  GridCityOptions opt;
  opt.width = 15;
  opt.height = 15;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraEngine engine(*g);
  auto full = RunDijkstra(*g, 0);
  for (NodeId t = 0; t < g->num_nodes(); t += 13) {
    EXPECT_DOUBLE_EQ(engine.Distance(0, t), full.dist[static_cast<size_t>(t)]);
  }
}

TEST(DijkstraEngineTest, ReusableAcrossQueries) {
  RoadNetwork g = Line();
  DijkstraEngine engine(g);
  EXPECT_DOUBLE_EQ(engine.Distance(0, 3), 6);
  EXPECT_DOUBLE_EQ(engine.Distance(1, 2), 2);
  EXPECT_DOUBLE_EQ(engine.Distance(3, 0), kInfiniteCost);
  EXPECT_DOUBLE_EQ(engine.Distance(2, 2), 0);
}

TEST(DijkstraEngineTest, MultiTargetDistances) {
  RoadNetwork g = Line();
  DijkstraEngine engine(g);
  auto d = engine.Distances(0, {3, 1, 1, 0});
  ASSERT_EQ(d.size(), 4u);
  EXPECT_DOUBLE_EQ(d[0], 6);
  EXPECT_DOUBLE_EQ(d[1], 1);
  EXPECT_DOUBLE_EQ(d[2], 1);  // duplicate targets each resolved
  EXPECT_DOUBLE_EQ(d[3], 0);
}

TEST(DijkstraEngineTest, MultiTargetRadius) {
  RoadNetwork g = Line();
  DijkstraEngine engine(g);
  auto d = engine.Distances(0, {1, 3}, /*radius=*/2);
  EXPECT_DOUBLE_EQ(d[0], 1);
  EXPECT_EQ(d[1], kInfiniteCost);
}

TEST(DijkstraEngineTest, ExploreVisitsWithinRadius) {
  RoadNetwork g = Line();
  DijkstraEngine engine(g);
  std::vector<NodeId> visited;
  engine.Explore(0, 3.0, /*reverse=*/false,
                 [&](NodeId v, Cost) { visited.push_back(v); });
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 1, 2}));
}

TEST(DijkstraEngineTest, ExploreReverse) {
  RoadNetwork g = Line();
  DijkstraEngine engine(g);
  std::vector<NodeId> visited;
  engine.Explore(3, 5.0, /*reverse=*/true,
                 [&](NodeId v, Cost) { visited.push_back(v); });
  EXPECT_EQ(visited, (std::vector<NodeId>{3, 2, 1}));
}

}  // namespace
}  // namespace urr

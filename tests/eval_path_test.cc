// Evaluation-path contract suite for the zero-copy kernel, the
// cross-window eval cache and bound screening:
//   1. FindBestInsertionScratch (with and without screening) is
//      bit-identical to the legacy copy kernel and agrees with brute force,
//   2. BuildTrialView reproduces the applied schedule field for field,
//   3. the steady-state EvaluateCandidates path makes zero TransferSequence
//      copies, while the legacy kernel provably does copy,
//   4. schedule versions stamp exactly the observable mutations, which is
//      what makes (rider, vehicle, version) a safe cache key,
//   5. EvalCache lookup/store need_utility semantics,
//   6. GroupCandidatesForRider's key-vertex and Euclidean rejection
//      branches drop only provably infeasible vehicles.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "urr/eval_cache.h"
#include "urr/solution.h"

namespace urr {
namespace {

// ---------------------------------------------------------------------------
// 1 + 2: scratch-vs-copy differential on random city schedules.
// ---------------------------------------------------------------------------

TEST(EvalPathTest, ScratchKernelMatchesCopyKernelBitForBit) {
  InsertionScratch plain_scratch;
  InsertionScratch screened_scratch;
  InsertionScratch trial_scratch;
  int feasible_cases = 0;
  uint64_t total_elided = 0;
  uint64_t plain_queries = 0;
  uint64_t screened_queries = 0;
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    Rng rng(seed);
    GridCityOptions opt;
    opt.width = 9;
    opt.height = 9;
    auto g = GenerateGridCity(opt, &rng);
    ASSERT_TRUE(g.ok());
    DijkstraOracle oracle(*g);
    const InsertionScreen screen{&*g, g->MaxSpeed()};
    ASSERT_TRUE(screen.enabled());

    auto random_node = [&] {
      return static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    };
    for (int trial = 0; trial < 30; ++trial) {
      TransferSequence seq(random_node(), 0, /*capacity=*/3, &oracle);
      const int base_riders = static_cast<int>(rng.UniformInt(0, 4));
      for (int r = 0; r < base_riders; ++r) {
        const NodeId s = random_node();
        const NodeId e = random_node();
        if (s == e) continue;
        const Cost direct = oracle.Distance(s, e);
        RiderTrip grow{100 + r, s, e, seq.EndTime() + rng.Uniform(200, 2000),
                       0};
        grow.dropoff_deadline =
            grow.pickup_deadline + direct * rng.Uniform(1.2, 2.5);
        auto plan = FindBestInsertion(seq, grow);
        if (plan.ok()) {
          ASSERT_TRUE(ApplyInsertion(&seq, grow, *plan).ok());
        }
      }
      const NodeId s = random_node();
      const NodeId e = random_node();
      if (s == e) continue;
      const Cost direct = oracle.Distance(s, e);
      RiderTrip trip{7, s, e, rng.Uniform(100, 1500), 0};
      trip.dropoff_deadline =
          trip.pickup_deadline + direct * rng.Uniform(1.1, 2.0);

      bool cb_copy = false;
      bool cb_plain = false;
      bool cb_screened = false;
      const auto copy = FindBestInsertionCopy(seq, trip, &cb_copy);
      const ScheduleView view = seq.View();
      const uint64_t pq0 = plain_scratch.oracle_queries;
      const auto plain = FindBestInsertionScratch(view, trip, &cb_plain,
                                                 nullptr, &plain_scratch);
      plain_queries += plain_scratch.oracle_queries - pq0;
      const uint64_t sq0 = screened_scratch.oracle_queries;
      const uint64_t el0 = screened_scratch.elided_queries;
      const auto screened = FindBestInsertionScratch(
          view, trip, &cb_screened, &screen, &screened_scratch);
      screened_queries += screened_scratch.oracle_queries - sq0;
      total_elided += screened_scratch.elided_queries - el0;

      // The three kernels must agree on everything observable.
      ASSERT_EQ(copy.ok(), plain.ok()) << "trial " << trial;
      ASSERT_EQ(copy.ok(), screened.ok()) << "trial " << trial;
      EXPECT_EQ(cb_copy, cb_plain) << "trial " << trial;
      EXPECT_EQ(cb_copy, cb_screened) << "trial " << trial;
      const auto brute = FindBestInsertionBruteForce(seq, trip);
      ASSERT_EQ(copy.ok(), brute.ok()) << "trial " << trial;
      if (!copy.ok()) continue;
      ++feasible_cases;
      EXPECT_EQ(plain->pickup_pos, copy->pickup_pos);
      EXPECT_EQ(plain->dropoff_pos, copy->dropoff_pos);
      EXPECT_EQ(plain->delta_cost, copy->delta_cost);  // bit-identical
      EXPECT_EQ(screened->pickup_pos, copy->pickup_pos);
      EXPECT_EQ(screened->dropoff_pos, copy->dropoff_pos);
      EXPECT_EQ(screened->delta_cost, copy->delta_cost);
      EXPECT_NEAR(copy->delta_cost, brute->delta_cost, 1e-6);

      // BuildTrialView's derived fields must equal the applied schedule's.
      const ScheduleView tv = BuildTrialView(view, trip, *plain,
                                             &trial_scratch);
      TransferSequence applied = seq;
      ASSERT_TRUE(ApplyInsertion(&applied, trip, *plain).ok());
      ASSERT_EQ(tv.num_stops, applied.num_stops());
      EXPECT_EQ(tv.start, applied.start_location());
      EXPECT_EQ(tv.now, applied.now());
      EXPECT_EQ(tv.capacity, applied.capacity());
      for (int u = 0; u < tv.num_stops; ++u) {
        EXPECT_EQ(tv.stop(u).location, applied.stop(u).location);
        EXPECT_EQ(tv.stop(u).rider, applied.stop(u).rider);
        EXPECT_EQ(tv.stop(u).type, applied.stop(u).type);
        EXPECT_EQ(tv.stop(u).deadline, applied.stop(u).deadline);
        EXPECT_EQ(tv.leg_cost[u], applied.leg_cost(u)) << "leg " << u;
        EXPECT_EQ(tv.EarliestArrival(u), applied.EarliestArrival(u));
        EXPECT_EQ(tv.LatestCompletion(u), applied.LatestCompletion(u));
        EXPECT_EQ(tv.FlexTime(u), applied.FlexTime(u));
        EXPECT_EQ(tv.Onboard(u), applied.Onboard(u));
      }
      EXPECT_EQ(tv.TotalCost(), applied.TotalCost());
      EXPECT_EQ(tv.EndTime(), applied.EndTime());
      EXPECT_EQ(tv.EndOnboard(), applied.EndOnboard());
    }
  }
  // The sweep must exercise real insertions and real screening.
  EXPECT_GT(feasible_cases, 10);
  EXPECT_GT(total_elided, 0u);
  EXPECT_LT(screened_queries, plain_queries);
}

// ---------------------------------------------------------------------------
// 3: zero TransferSequence copies on the steady-state evaluation path.
// ---------------------------------------------------------------------------

class EvalPathFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Edge> edges;
    std::vector<Coord> coords;
    for (NodeId v = 0; v < 6; ++v) {
      coords.push_back({10.0 * v, 0});
      if (v + 1 < 6) {
        edges.push_back({v, v + 1, 10});
        edges.push_back({v + 1, v, 10});
      }
    }
    auto g = RoadNetwork::Build(6, edges, std::move(coords));
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
    instance_.network = network_.get();
    instance_.riders = {{1, 3, 200, 500, -1}, {2, 4, 200, 500, -1}};
    instance_.vehicles = {{0, 2}, {5, 2}};
    model_ = std::make_unique<UtilityModel>(&instance_, UtilityParams{0, 0});
  }

  SolverContext Context() {
    SolverContext ctx;
    ctx.oracle = oracle_.get();
    ctx.model = model_.get();
    ctx.euclid_speed = network_->MaxSpeed();
    return ctx;
  }

  UrrInstance instance_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<UtilityModel> model_;
};

TEST_F(EvalPathFixture, SteadyStateEvaluationMakesZeroCopies) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  ASSERT_TRUE(ArrangeSingleRider(&sol.schedules[0], instance_.Trip(0)).ok());
  sol.assignment[0] = 0;
  const std::vector<RiderVehiclePair> pairs = {{1, 0}, {1, 1}};

  EvalCounters counters;
  SolverContext ctx = Context();
  ctx.counters = &counters;

  const uint64_t before = TransferSequence::CopyCount();
  const auto evals =
      EvaluateCandidates(instance_, &ctx, sol, pairs, /*need_utility=*/true);
  EXPECT_EQ(TransferSequence::CopyCount(), before)
      << "zero-copy path cloned a schedule";
  ASSERT_EQ(evals.size(), 2u);
  EXPECT_TRUE(evals[0].feasible);
  EXPECT_TRUE(evals[1].feasible);
  EXPECT_EQ(counters.kernel_evals.load(), 2u);

  // The legacy kernel really is the copying baseline: same values, copies.
  EvalCounters legacy_counters;
  SolverContext legacy = Context();
  legacy.counters = &legacy_counters;
  legacy.zero_copy_kernel = false;
  const auto legacy_evals =
      EvaluateCandidates(instance_, &legacy, sol, pairs, true);
  EXPECT_GT(TransferSequence::CopyCount(), before);
  ASSERT_EQ(legacy_evals.size(), evals.size());
  for (size_t k = 0; k < evals.size(); ++k) {
    EXPECT_EQ(legacy_evals[k].feasible, evals[k].feasible);
    EXPECT_EQ(legacy_evals[k].plan.pickup_pos, evals[k].plan.pickup_pos);
    EXPECT_EQ(legacy_evals[k].plan.dropoff_pos, evals[k].plan.dropoff_pos);
    EXPECT_EQ(legacy_evals[k].delta_cost, evals[k].delta_cost);
    EXPECT_EQ(legacy_evals[k].delta_utility, evals[k].delta_utility);
  }
}

TEST_F(EvalPathFixture, CacheHitsSkipTheKernelUntilTheScheduleChanges) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  EvalCache cache;
  EvalCounters counters;
  SolverContext ctx = Context();
  ctx.eval_cache = &cache;
  ctx.counters = &counters;

  const CandidateEval first =
      EvaluateCandidate(instance_, &ctx, sol, 0, 0, /*need_utility=*/true);
  EXPECT_TRUE(first.feasible);
  EXPECT_EQ(counters.cache_misses.load(), 1u);
  EXPECT_EQ(counters.cache_hits.load(), 0u);

  const CandidateEval second = EvaluateCandidate(instance_, &ctx, sol, 0, 0,
                                                 /*need_utility=*/true);
  EXPECT_EQ(counters.cache_hits.load(), 1u);
  EXPECT_EQ(counters.kernel_evals.load(), 1u);  // second solve never ran
  EXPECT_EQ(second.feasible, first.feasible);
  EXPECT_EQ(second.plan.pickup_pos, first.plan.pickup_pos);
  EXPECT_EQ(second.plan.dropoff_pos, first.plan.dropoff_pos);
  EXPECT_EQ(second.delta_cost, first.delta_cost);
  EXPECT_EQ(second.delta_utility, first.delta_utility);

  // Mutating the schedule bumps its version; the stale entry must miss.
  ASSERT_TRUE(ArrangeSingleRider(&sol.schedules[0], instance_.Trip(1)).ok());
  sol.assignment[1] = 0;
  EvaluateCandidate(instance_, &ctx, sol, 0, 0, true);
  EXPECT_EQ(counters.cache_misses.load(), 2u);
  EXPECT_EQ(counters.kernel_evals.load(), 2u);
}

// ---------------------------------------------------------------------------
// 4: version stamping — exactly the observable mutations bump it.
// ---------------------------------------------------------------------------

TEST_F(EvalPathFixture, VersionStampsObservableMutationsOnly) {
  TransferSequence a(0, 0, 2, oracle_.get());
  TransferSequence b(0, 0, 2, oracle_.get());
  // Process-unique: identically-constructed sequences never share a version.
  EXPECT_NE(a.version(), b.version());

  // set_oracle leaves content identical -> no bump.
  uint64_t v = a.version();
  a.set_oracle(oracle_.get());
  EXPECT_EQ(a.version(), v);

  // Insertions bump.
  ASSERT_TRUE(ArrangeSingleRider(&a, instance_.Trip(0)).ok());
  EXPECT_NE(a.version(), v);
  v = a.version();

  // Copies share the version (identical content)...
  const uint64_t copies = TransferSequence::CopyCount();
  TransferSequence clone = a;
  EXPECT_EQ(clone.version(), a.version());
  EXPECT_EQ(TransferSequence::CopyCount(), copies + 1);
  // ...and diverge once either side mutates.
  ASSERT_TRUE(clone.RemoveRider(0).ok());
  EXPECT_NE(clone.version(), a.version());

  // AdvanceTo that changes nothing observable keeps the version.
  ASSERT_TRUE(a.AdvanceTo(a.now()).empty());
  EXPECT_EQ(a.version(), v);
  // AdvanceTo that executes stops bumps it.
  ASSERT_FALSE(a.AdvanceTo(a.EndTime() + 1).empty());
  EXPECT_NE(a.version(), v);
  v = a.version();
  // Now idle: advancing time moves `now`, which is observable.
  a.AdvanceTo(a.now() + 50);
  EXPECT_NE(a.version(), v);
}

// ---------------------------------------------------------------------------
// 5: EvalCache lookup/store semantics.
// ---------------------------------------------------------------------------

TEST(EvalCacheTest, LookupRespectsVersionAndUtilityKind) {
  EvalCache cache;
  CandidateEval eval;
  eval.feasible = true;
  eval.plan = {1, 2, 42.0};
  eval.delta_cost = 42.0;
  eval.delta_utility = 0.5;

  CandidateEval out;
  EXPECT_FALSE(cache.Lookup(3, 7, 100, true, &out));  // empty cache

  cache.Store(3, 7, 100, /*has_utility=*/true, eval);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(3, 7, 100, /*need_utility=*/true, &out));
  EXPECT_EQ(out.delta_utility, 0.5);
  EXPECT_EQ(out.delta_cost, 42.0);
  EXPECT_EQ(out.plan.pickup_pos, 1);
  // A utility-bearing entry serves cost-only requests with Δμ zeroed,
  // exactly like a fresh need_utility=false evaluation.
  ASSERT_TRUE(cache.Lookup(3, 7, 100, /*need_utility=*/false, &out));
  EXPECT_EQ(out.delta_utility, 0.0);
  EXPECT_EQ(out.delta_cost, 42.0);

  // Stale version: miss. Distinct pair: miss.
  EXPECT_FALSE(cache.Lookup(3, 7, 101, true, &out));
  EXPECT_FALSE(cache.Lookup(3, 8, 100, true, &out));

  // Same-version cost-only store must not downgrade the utility entry.
  CandidateEval cost_only = eval;
  cost_only.delta_utility = 0;
  cache.Store(3, 7, 100, /*has_utility=*/false, cost_only);
  ASSERT_TRUE(cache.Lookup(3, 7, 100, /*need_utility=*/true, &out));
  EXPECT_EQ(out.delta_utility, 0.5);

  // A cost-only entry never serves a utility request.
  cache.Store(9, 1, 50, /*has_utility=*/false, cost_only);
  EXPECT_FALSE(cache.Lookup(9, 1, 50, /*need_utility=*/true, &out));
  ASSERT_TRUE(cache.Lookup(9, 1, 50, /*need_utility=*/false, &out));

  // A newer version replaces the entry outright.
  cache.Store(3, 7, 200, /*has_utility=*/false, cost_only);
  EXPECT_FALSE(cache.Lookup(3, 7, 100, false, &out));
  EXPECT_TRUE(cache.Lookup(3, 7, 200, false, &out));

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(3, 7, 200, false, &out));
}

// ---------------------------------------------------------------------------
// 6: GroupCandidatesForRider rejection branches.
// ---------------------------------------------------------------------------

TEST_F(EvalPathFixture, GroupCandidatesKeyBoundRejectsOnlyProvablyInfeasible) {
  // Rider 0: source node 1, pickup budget 200. Key-vertex lower bounds of
  // 250 (vehicle 0) and 10 (vehicle 1) with slack 30: only vehicle 0's
  // bound (220) exceeds the budget.
  const std::vector<Cost> dist_to_key = {250, 10};
  GroupFilter filter;
  filter.dist_to_key = &dist_to_key;
  filter.slack = 30;
  SolverContext ctx = Context();
  ctx.euclid_speed = 0;  // isolate the key-bound branch
  const std::vector<int> all = {0, 1};
  EXPECT_EQ(GroupCandidatesForRider(instance_, &ctx, 0, all, filter),
            (std::vector<int>{1}));

  // Slack large enough to absorb the bound keeps both.
  filter.slack = 60;
  EXPECT_EQ(GroupCandidatesForRider(instance_, &ctx, 0, all, filter),
            (std::vector<int>{0, 1}));
}

TEST_F(EvalPathFixture, GroupCandidatesEuclideanBoundNeedsSpeedAndCoords) {
  // Permissive key bound; rider 0 at node 1 with budget 200. Vehicle 1
  // sits at node 5: straight-line 40 at MaxSpeed 1 -> lower bound 40.
  const std::vector<Cost> dist_to_key = {0, 0};
  GroupFilter filter;
  filter.dist_to_key = &dist_to_key;
  filter.slack = 0;
  const std::vector<int> all = {0, 1};

  UrrInstance tight = instance_;
  tight.riders[0].pickup_deadline = 30;  // budget 30 < vehicle-1 bound 40
  SolverContext ctx = Context();
  ASSERT_GT(ctx.euclid_speed, 0);
  EXPECT_EQ(GroupCandidatesForRider(tight, &ctx, 0, all, filter),
            (std::vector<int>{0}));

  // euclid_speed = 0 disables the branch: the far vehicle survives to the
  // exact kernel instead of being screened.
  ctx.euclid_speed = 0;
  EXPECT_EQ(GroupCandidatesForRider(tight, &ctx, 0, all, filter),
            (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace urr

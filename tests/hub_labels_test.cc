#include "routing/hub_labels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/dimacs.h"
#include "graph/generators.h"
#include "routing/distance_oracle.h"

namespace urr {
namespace {

uint64_t BitsOf(Cost c) {
  uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(c));
  std::memcpy(&b, &c, sizeof(b));
  return b;
}

RoadNetwork SmallCity(uint64_t seed, int width = 14, int height = 14) {
  Rng rng(seed);
  GridCityOptions opt;
  opt.width = width;
  opt.height = height;
  auto g = GenerateGridCity(opt, &rng);
  EXPECT_TRUE(g.ok());
  return *std::move(g);
}

/// Rounds every edge cost to a multiple of 1/256 so that all path sums are
/// exact in double arithmetic: Dijkstra, CH and HL then agree bitwise.
RoadNetwork Quantize(const RoadNetwork& net) {
  std::vector<Edge> edges = net.EdgeList();
  for (Edge& e : edges) e.cost = std::round(e.cost * 256.0) / 256.0;
  auto g = RoadNetwork::Build(net.num_nodes(), std::move(edges), net.coords());
  EXPECT_TRUE(g.ok());
  return *std::move(g);
}

TEST(HubLabelsTest, MatchesDijkstraOnGeneratorGraphs) {
  for (const uint64_t seed : {51, 92, 133}) {
    const RoadNetwork net = SmallCity(seed);
    auto hl = HubLabelOracle::Create(net);
    ASSERT_TRUE(hl.ok());
    DijkstraOracle ref(net);
    Rng rng(seed * 7 + 1);
    for (int i = 0; i < 300; ++i) {
      const NodeId s =
          static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
      const NodeId t =
          static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
      EXPECT_NEAR((*hl)->Distance(s, t), ref.Distance(s, t), 1e-6)
          << "seed " << seed << " query " << s << "->" << t;
    }
  }
}

TEST(HubLabelsTest, BitwiseEqualToDijkstraAndChOnQuantizedCosts) {
  const RoadNetwork net = Quantize(SmallCity(77));
  auto hl = HubLabelOracle::Create(net);
  ASSERT_TRUE(hl.ok());
  auto ch = ChOracle::Create(net);
  ASSERT_TRUE(ch.ok());
  DijkstraOracle ref(net);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1));
    const Cost want = ref.Distance(s, t);
    EXPECT_EQ(BitsOf((*hl)->Distance(s, t)), BitsOf(want))
        << "hl vs dijkstra " << s << "->" << t;
    EXPECT_EQ(BitsOf((*ch)->Distance(s, t)), BitsOf(want))
        << "ch vs dijkstra " << s << "->" << t;
  }
}

TEST(HubLabelsTest, MatchesDijkstraOnDimacsFixture) {
  // Hand-written DIMACS fixture: a directed diamond with a shortcut-worthy
  // middle, an asymmetric pair, and an unreachable sink (node 7 has no
  // incoming arcs from the rest). Integer weights => exact arithmetic.
  const std::string gr = R"(c tiny fixture
p sp 7 10
a 1 2 3
a 2 3 4
a 1 3 9
a 3 4 2
a 2 4 8
a 4 5 1
a 5 1 7
a 5 6 2
a 6 4 5
a 3 6 11
)";
  auto g = ParseDimacs(gr);
  ASSERT_TRUE(g.ok());
  auto hl = HubLabelOracle::Create(*g);
  ASSERT_TRUE(hl.ok());
  DijkstraOracle ref(*g);
  for (NodeId s = 0; s < g->num_nodes(); ++s) {
    for (NodeId t = 0; t < g->num_nodes(); ++t) {
      EXPECT_EQ(BitsOf((*hl)->Distance(s, t)), BitsOf(ref.Distance(s, t)))
          << s << "->" << t;
    }
  }
}

// The load-bearing claim for batched candidate evaluation: each oracle's
// many-to-many rectangle is bitwise identical to its own scalar queries,
// even on jittered (non-quantized) generator costs.
TEST(HubLabelsTest, BatchedRectanglesMatchScalarBitwise) {
  const RoadNetwork net = SmallCity(29);
  auto ch = ChOracle::Create(net);
  ASSERT_TRUE(ch.ok());
  auto hl = HubLabelOracle::FromHierarchy((*ch)->hierarchy());
  ASSERT_TRUE(hl.ok());
  DijkstraOracle dij(net);
  CachingOracle caching(ch->get());

  Rng rng(31);
  std::vector<NodeId> sources, targets;
  for (int i = 0; i < 17; ++i) {
    sources.push_back(static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1)));
  }
  for (int i = 0; i < 23; ++i) {
    targets.push_back(static_cast<NodeId>(rng.UniformInt(0, net.num_nodes() - 1)));
  }
  // Include a source == target diagonal and duplicate columns on purpose.
  targets[3] = sources[2];
  targets[11] = targets[4];

  std::vector<DistanceOracle*> contenders = {&dij, ch->get(), hl->get(),
                                             &caching};
  for (DistanceOracle* oracle : contenders) {
    ASSERT_TRUE(oracle->SupportsBatch());
    std::vector<Cost> batched(sources.size() * targets.size());
    oracle->BatchDistances(sources, targets, batched.data());
    for (size_t i = 0; i < sources.size(); ++i) {
      for (size_t j = 0; j < targets.size(); ++j) {
        EXPECT_EQ(BitsOf(batched[i * targets.size() + j]),
                  BitsOf(oracle->Distance(sources[i], targets[j])))
            << sources[i] << "->" << targets[j];
      }
    }
    // Element-wise batch too (used by Rebuild and GBS classify).
    std::vector<NodeId> us(sources.begin(), sources.end());
    std::vector<NodeId> vs(targets.begin(), targets.begin() + sources.size());
    std::vector<Cost> pairwise(us.size());
    oracle->BatchPairwise(us, vs, pairwise.data());
    for (size_t k = 0; k < us.size(); ++k) {
      EXPECT_EQ(BitsOf(pairwise[k]), BitsOf(oracle->Distance(us[k], vs[k])));
    }
  }
}

TEST(HubLabelsTest, CloneSharesLabelStoreAndIsIndependent) {
  const RoadNetwork net = SmallCity(13, 8, 8);
  auto hl = HubLabelOracle::Create(net);
  ASSERT_TRUE(hl.ok());
  std::unique_ptr<DistanceOracle> clone = (*hl)->Clone();
  ASSERT_NE(clone, nullptr);
  // Shared immutable store: the clone is just another view.
  auto* typed = dynamic_cast<HubLabelOracle*>(clone.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(&typed->labels(), &(*hl)->labels());
  // Independent call counters.
  const Cost a = (*hl)->Distance(0, 1);
  const Cost b = clone->Distance(0, 1);
  EXPECT_EQ(BitsOf(a), BitsOf(b));
  EXPECT_EQ((*hl)->num_calls(), 1);
  EXPECT_EQ(clone->num_calls(), 1);
}

TEST(HubLabelsTest, LabelsAreSortedAndCarrySelfEntries) {
  const RoadNetwork net = SmallCity(7, 9, 9);
  auto hl = HubLabelOracle::Create(net);
  ASSERT_TRUE(hl.ok());
  const HubLabels& labels = (*hl)->labels();
  EXPECT_EQ(labels.num_nodes(), net.num_nodes());
  EXPECT_GT(labels.average_label_size(), 0.0);
  for (NodeId v = 0; v < labels.num_nodes(); ++v) {
    for (const auto hubs : {labels.ForwardHubs(v), labels.BackwardHubs(v)}) {
      ASSERT_FALSE(hubs.empty());
      bool has_self = false;
      for (size_t k = 0; k < hubs.size(); ++k) {
        if (hubs[k] == v) has_self = true;
        if (k > 0) {
          EXPECT_LT(hubs[k - 1], hubs[k]);
        }
      }
      EXPECT_TRUE(has_self) << "node " << v;
    }
    EXPECT_EQ(BitsOf(labels.Distance(v, v)), BitsOf(Cost{0}));
  }
}

TEST(HubLabelsTest, LabelBytesIdenticalAcrossThreadCounts) {
  const RoadNetwork net = SmallCity(23, 16, 12);
  auto ch = ContractionHierarchy::Build(net);
  ASSERT_TRUE(ch.ok());

  auto bytes_with_threads = [&](int threads) {
    std::unique_ptr<ThreadPool> pool;
    if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
    auto hl = HubLabels::Build(*ch, pool.get());
    EXPECT_TRUE(hl.ok());
    BinaryWriter writer;
    hl->Serialize(&writer);
    return writer.buffer();
  };

  const std::string serial = bytes_with_threads(1);
  ASSERT_FALSE(serial.empty());
  for (const int threads : {2, 8}) {
    EXPECT_EQ(bytes_with_threads(threads), serial)
        << "labels extracted with " << threads
        << " threads must be bit-identical to the serial extraction";
  }
}

TEST(OracleStackTest, BuildsEveryKindAndParsesNames) {
  const RoadNetwork net = SmallCity(3, 8, 8);
  for (const char* name : {"dijkstra", "ch", "caching", "hl"}) {
    auto kind = ParseOracleKind(name);
    ASSERT_TRUE(kind.ok()) << name;
    EXPECT_STREQ(OracleKindName(*kind), name);
    auto stack = BuildOracleStack(net, *kind);
    ASSERT_TRUE(stack.ok()) << name;
    ASSERT_NE(stack->active, nullptr) << name;
    EXPECT_GE(stack->active->Distance(0, 1), 0) << name;
  }
  EXPECT_FALSE(ParseOracleKind("bogus").ok());
  // The caching stack exposes its CH for benches that need the hierarchy.
  auto stack = BuildOracleStack(net, OracleKind::kCachingCh);
  ASSERT_TRUE(stack.ok());
  EXPECT_NE(stack->ch, nullptr);
  EXPECT_EQ(stack->active, stack->caching.get());
}

}  // namespace
}  // namespace urr

// The live-session API's core contract: driving a recorded workload
// through SubmitLive/CancelLive in (time, rank) order produces an event
// log — and a final fleet state — byte-identical to DispatchEngine::Run()
// on the same workload. Plus the live-only behaviors: synchronous
// submit outcomes, admission control, per-reason reject counters, rider
// status queries and injection-order errors.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exp/harness.h"

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  cfg.seed = seed;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

StreamingWorkload MakeWorkload(const ExperimentWorld& world,
                               double arrival_rate = 0.5,
                               double cancel_fraction = 0.0) {
  Rng rng(world.config.seed + 100);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = arrival_rate;
  opt.cancel_fraction = cancel_fraction;
  return MakeStreamingWorkload(world.instance, opt, &rng);
}

struct EngineRun {
  EngineRun(ExperimentWorld* world, const StreamingWorkload* workload,
            const EngineConfig& config)
      : model(&workload->instance,
              UtilityParams{world->config.alpha, world->config.beta}),
        ctx(world->Context()),
        engine((ctx.model = &model, workload), &ctx, config) {}
  UtilityModel model;
  SolverContext ctx;
  DispatchEngine engine;
};

/// One recorded input in the engine's queue order.
struct Entry {
  Cost time = 0;
  int rank = 0;  // 0 = arrival, 1 = cancel (matches the engine's ranks)
  size_t index = 0;
  RiderId rider = -1;
};

std::vector<Entry> RecordedEntries(const StreamingWorkload& workload) {
  std::vector<Entry> entries;
  for (size_t i = 0; i < workload.arrivals.size(); ++i) {
    entries.push_back({workload.arrivals[i].time, 0, i,
                       workload.arrivals[i].rider});
  }
  for (size_t i = 0; i < workload.cancellations.size(); ++i) {
    entries.push_back({workload.cancellations[i].time, 1, i,
                       workload.cancellations[i].rider});
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.rank != b.rank) return a.rank < b.rank;
    return a.index < b.index;
  });
  return entries;
}

/// Replays the recorded workload through the live hooks.
void DriveLive(DispatchEngine* engine, const StreamingWorkload& workload) {
  ASSERT_TRUE(engine->BeginLive().ok());
  for (const Entry& e : RecordedEntries(workload)) {
    if (e.rank == 0) {
      auto outcome = engine->SubmitLive(e.rider, e.time);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
    } else {
      auto cancelled = engine->CancelLive(e.rider, e.time);
      ASSERT_TRUE(cancelled.ok()) << cancelled.status();
    }
  }
  ASSERT_TRUE(engine->FinishLive().ok());
}

void ExpectLiveMatchesBatch(const EngineConfig& config, double arrival_rate,
                            double cancel_fraction) {
  auto world = SmallWorld();
  const StreamingWorkload workload =
      MakeWorkload(*world, arrival_rate, cancel_fraction);

  EngineRun batch(world.get(), &workload, config);
  ASSERT_TRUE(batch.engine.Run().ok());

  auto live_world = SmallWorld();  // fresh context, same seed
  EngineRun live(live_world.get(), &workload, config);
  DriveLive(&live.engine, workload);

  EXPECT_EQ(live.engine.SerializedLog(), batch.engine.SerializedLog());
  EXPECT_EQ(live.engine.SolutionFingerprint(),
            batch.engine.SolutionFingerprint());
  EXPECT_EQ(live.engine.metrics().total_accepted,
            batch.engine.metrics().total_accepted);
}

TEST(LiveEngineTest, WindowedLiveLogMatchesBatchByteForByte) {
  EngineConfig config;
  config.window = 20;
  config.solver = WindowSolver::kEfficientGreedy;
  ExpectLiveMatchesBatch(config, 0.5, 0.2);
}

TEST(LiveEngineTest, OnlineLiveLogMatchesBatchByteForByte) {
  EngineConfig config;
  config.window = 0;
  ExpectLiveMatchesBatch(config, 1.0, 0.1);
}

TEST(LiveEngineTest, BoundedQueueLiveLogMatchesBatch) {
  EngineConfig config;
  config.window = 15;
  config.max_queue = 3;  // forces queue_full rejections on both sides
  ExpectLiveMatchesBatch(config, 2.0, 0.0);
}

TEST(LiveEngineTest, RestoredEngineContinuesLiveSessionByteForByte) {
  // The recovery primitive behind the crash-safe service: checkpoint a
  // live session mid-stream, Restore() into a fresh engine, reopen the
  // live session and continue — the combined run must be indistinguishable
  // from the uninterrupted one.
  EngineConfig config;
  config.window = 20;
  config.solver = WindowSolver::kEfficientGreedy;
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 0.5, 0.2);
  const std::vector<Entry> entries = RecordedEntries(workload);
  ASSERT_GT(entries.size(), 4u);
  const size_t cut = entries.size() / 2;

  const auto drive = [&](DispatchEngine* engine, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Entry& e = entries[i];
      if (e.rank == 0) {
        auto outcome = engine->SubmitLive(e.rider, e.time);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
      } else {
        auto cancelled = engine->CancelLive(e.rider, e.time);
        ASSERT_TRUE(cancelled.ok()) << cancelled.status();
      }
    }
  };

  // Uninterrupted reference.
  auto ref_world = SmallWorld();
  EngineRun ref(ref_world.get(), &workload, config);
  ASSERT_TRUE(ref.engine.BeginLive().ok());
  drive(&ref.engine, 0, entries.size());
  ASSERT_TRUE(ref.engine.FinishLive().ok());

  // First half, then a checkpoint — taken mid-session, like the service's
  // cadence checkpoints.
  auto half_world = SmallWorld();
  EngineRun half(half_world.get(), &workload, config);
  ASSERT_TRUE(half.engine.BeginLive().ok());
  drive(&half.engine, 0, cut);
  const std::string ckpt = half.engine.Checkpoint();

  // Restore into a fresh engine and finish the second half there.
  auto resumed_world = SmallWorld();
  EngineRun resumed(resumed_world.get(), &workload, config);
  ASSERT_TRUE(resumed.engine.Restore(ckpt).ok());
  ASSERT_TRUE(resumed.engine.BeginLive().ok());
  drive(&resumed.engine, cut, entries.size());
  ASSERT_TRUE(resumed.engine.FinishLive().ok());

  EXPECT_EQ(resumed.engine.SerializedLog(), ref.engine.SerializedLog())
      << "checkpoint/restore across a live session must not perturb the "
         "event log";
  EXPECT_EQ(resumed.engine.SolutionFingerprint(),
            ref.engine.SolutionFingerprint());
  EXPECT_EQ(resumed.engine.metrics().total_accepted,
            ref.engine.metrics().total_accepted);
}

TEST(LiveEngineTest, SubmitOutcomeReportsQueuedAndQueueFull) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0);
  EngineConfig config;
  config.window = 1000;  // nothing solves during the submissions
  config.max_queue = 2;
  EngineRun run(world.get(), &workload, config);
  ASSERT_TRUE(run.engine.BeginLive().ok());

  for (int i = 0; i < 2; ++i) {
    auto outcome =
        run.engine.SubmitLive(workload.arrivals[i].rider,
                              workload.arrivals[i].time);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_TRUE(outcome->queued);
    EXPECT_EQ(outcome->reject, EngineReject::kNone);
  }
  EXPECT_EQ(run.engine.queue_depth(), 2);

  auto full = run.engine.SubmitLive(workload.arrivals[2].rider,
                                    workload.arrivals[2].time);
  ASSERT_TRUE(full.ok()) << full.status();
  EXPECT_FALSE(full->queued);
  EXPECT_EQ(full->reject, EngineReject::kQueueFull);
  EXPECT_EQ(run.engine.metrics().rejects.queue_full, 1);

  ASSERT_TRUE(run.engine.FinishLive().ok());
  EXPECT_EQ(run.engine.metrics().rejects.total(),
            run.engine.metrics().total_rejected);
}

TEST(LiveEngineTest, OnlineOutcomeReportsAssignmentWithVehicle) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0);
  EngineConfig config;
  config.window = 0;
  EngineRun run(world.get(), &workload, config);
  ASSERT_TRUE(run.engine.BeginLive().ok());

  bool saw_assignment = false;
  for (size_t i = 0; i < 10 && i < workload.arrivals.size(); ++i) {
    auto outcome = run.engine.SubmitLive(workload.arrivals[i].rider,
                                         workload.arrivals[i].time);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_FALSE(outcome->queued);  // W = 0 decides on the spot
    if (outcome->assigned) {
      saw_assignment = true;
      EXPECT_GE(outcome->vehicle, 0);
      auto status = run.engine.QueryRider(workload.arrivals[i].rider);
      ASSERT_TRUE(status.ok());
      EXPECT_STREQ(status->state, "assigned");
      EXPECT_EQ(status->vehicle, outcome->vehicle);
    } else {
      EXPECT_NE(outcome->reject, EngineReject::kNone);
    }
  }
  EXPECT_TRUE(saw_assignment);
  ASSERT_TRUE(run.engine.FinishLive().ok());
  // Every verdict was counted under its reason.
  EXPECT_EQ(run.engine.metrics().rejects.total(),
            run.engine.metrics().total_rejected);
}

TEST(LiveEngineTest, QueryRiderTracksLifecycle) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0);
  EngineConfig config;
  config.window = 30;
  EngineRun run(world.get(), &workload, config);
  ASSERT_TRUE(run.engine.BeginLive().ok());

  const RiderId rider = workload.arrivals[0].rider;
  auto before = run.engine.QueryRider(rider);
  ASSERT_TRUE(before.ok());
  EXPECT_STREQ(before->state, "pending");

  ASSERT_TRUE(
      run.engine.SubmitLive(rider, workload.arrivals[0].time).ok());
  auto queued = run.engine.QueryRider(rider);
  ASSERT_TRUE(queued.ok());
  EXPECT_STREQ(queued->state, "queued");
  EXPECT_DOUBLE_EQ(queued->arrival_time, workload.arrivals[0].time);

  EXPECT_FALSE(run.engine.QueryRider(-1).ok());
  EXPECT_FALSE(run.engine.QueryRider(10'000'000).ok());

  ASSERT_TRUE(run.engine.FinishLive().ok());
  auto after = run.engine.QueryRider(rider);
  ASSERT_TRUE(after.ok());
  // Terminal: served, expired or cancelled — but no longer queued.
  EXPECT_STRNE(after->state, "queued");
}

TEST(LiveEngineTest, InjectionOrderIsEnforced) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0);
  EngineConfig config;
  config.window = 30;
  EngineRun run(world.get(), &workload, config);

  // No session open yet.
  EXPECT_FALSE(run.engine.SubmitLive(workload.arrivals[0].rider, 0).ok());
  ASSERT_TRUE(run.engine.BeginLive().ok());
  EXPECT_FALSE(run.engine.BeginLive().ok());  // double open

  const RiderId rider = workload.arrivals[0].rider;
  ASSERT_TRUE(run.engine.SubmitLive(rider, 10).ok());
  // Duplicate submission and unknown riders are errors, not outcomes.
  EXPECT_EQ(run.engine.SubmitLive(rider, 11).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_FALSE(run.engine.SubmitLive(-1, 11).ok());
  // Time must be non-decreasing against the engine clock.
  EXPECT_FALSE(run.engine.SubmitLive(workload.arrivals[1].rider, 5).ok());
  // Edge faults need the armed overlay.
  EXPECT_FALSE(run.engine.InjectEdgeFaultLive(0, 1, 2.0, 12).ok());

  ASSERT_TRUE(run.engine.FinishLive().ok());
  ASSERT_TRUE(run.engine.FinishLive().ok());  // idempotent
  EXPECT_TRUE(run.engine.finished());
  // Post-finish injections fail.
  EXPECT_FALSE(run.engine.SubmitLive(workload.arrivals[2].rider, 99).ok());
}

TEST(LiveEngineTest, ArmedOverlayAcceptsLiveEdgeFaults) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0);
  EngineConfig config;
  config.window = 30;
  config.arm_overlay = true;
  EngineRun run(world.get(), &workload, config);
  ASSERT_TRUE(run.engine.BeginLive().ok());
  ASSERT_TRUE(
      run.engine.SubmitLive(workload.arrivals[0].rider, 5).ok());
  EXPECT_TRUE(run.engine.InjectEdgeFaultLive(0, 1, 2.0, 10).ok());
  EXPECT_FALSE(run.engine.InjectEdgeFaultLive(0, 1, 0.5, 11).ok())
      << "factors below 1 would break overlay admissibility";
  EXPECT_TRUE(run.engine.InjectEdgeRestoreLive(0, 1, 12).ok());
  EXPECT_TRUE(run.engine.InjectBreakdownLive(0, 13).ok());
  EXPECT_FALSE(run.engine.InjectBreakdownLive(-3, 14).ok());
  ASSERT_TRUE(run.engine.FinishLive().ok());
  EXPECT_EQ(run.engine.metrics().total_edge_disruptions, 1);
  EXPECT_EQ(run.engine.metrics().total_edge_restores, 1);
  EXPECT_EQ(run.engine.metrics().total_breakdowns, 1);
}

TEST(LiveEngineTest, AdvanceLiveRunsBoundariesBetweenRequests) {
  auto world = SmallWorld();
  const StreamingWorkload workload = MakeWorkload(*world, 1.0);
  EngineConfig config;
  config.window = 10;
  EngineRun run(world.get(), &workload, config);
  ASSERT_TRUE(run.engine.BeginLive().ok());
  ASSERT_TRUE(run.engine.SubmitLive(workload.arrivals[0].rider,
                                    workload.arrivals[0].time)
                  .ok());
  EXPECT_EQ(run.engine.queue_depth(), 1);
  // Advancing past the next boundary must solve the window.
  ASSERT_TRUE(run.engine.AdvanceLive(workload.arrivals[0].time + 25).ok());
  EXPECT_EQ(run.engine.queue_depth(), 0);
  EXPECT_GE(run.engine.now(), workload.arrivals[0].time + 25);
  EXPECT_FALSE(run.engine.AdvanceLive(0).ok()) << "clock must not go back";
  ASSERT_TRUE(run.engine.FinishLive().ok());
}

TEST(LiveEngineTest, EmptyPercentilesSerializeAsNull) {
  EngineMetrics metrics;  // no samples recorded at all
  const std::string json = EngineMetricsJson(metrics, false);
  EXPECT_NE(json.find("\"pickup_wait_p50\":null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"solve_latency_p99\":null"), std::string::npos);
  EXPECT_NE(json.find("\"rejects_by_reason\""), std::string::npos);

  metrics.pickup_waits = {1.0, 2.0, 3.0};
  const std::string filled = EngineMetricsJson(metrics, false);
  EXPECT_EQ(filled.find("\"pickup_wait_p50\":null"), std::string::npos);
  EXPECT_NE(filled.find("\"pickup_wait_p50\":2"), std::string::npos) << filled;
}

}  // namespace
}  // namespace urr

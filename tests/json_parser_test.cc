#include "common/json_parser.h"

#include <gtest/gtest.h>

#include <string>

namespace urr {
namespace {

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->as_bool());
  EXPECT_FALSE(ParseJson("false")->as_bool());
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-17")->as_number(), -17);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->as_number(), 1000);
  EXPECT_EQ(ParseJson("\"hi\"")->as_string(), "hi");
}

TEST(JsonParserTest, ParsesNestedStructures) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2);
  EXPECT_EQ(a->items()[2].GetString("b", ""), "c");
  const JsonValue* d = v->Find("d");
  ASSERT_NE(d, nullptr);
  ASSERT_NE(d->Find("e"), nullptr);
  EXPECT_TRUE(d->Find("e")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParserTest, AccessorsFallBackOnTypeMismatch) {
  auto v = ParseJson(R"({"n": 5, "s": "x", "b": true})");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->GetNumber("n", -1), 5);
  EXPECT_EQ(v->GetInt("n", -1), 5);
  EXPECT_DOUBLE_EQ(v->GetNumber("s", -1), -1);  // wrong type -> fallback
  EXPECT_EQ(v->GetString("n", "fb"), "fb");
  EXPECT_TRUE(v->GetBool("b", false));
  EXPECT_FALSE(v->GetBool("n", false));
  EXPECT_EQ(v->GetInt("absent", 42), 42);
}

TEST(JsonParserTest, DecodesStringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\/d\n\t\r\b\f")");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\n\t\r\b\f");
  // \u escapes decode to UTF-8 (2-byte and 3-byte sequences).
  auto u = ParseJson(R"("\u00e9\u20ac")");
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->as_string(), "\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("\"bad\\escape\"").ok());
  EXPECT_FALSE(ParseJson("\"\\u12g4\"").ok());
  EXPECT_FALSE(ParseJson("01").ok());
  EXPECT_FALSE(ParseJson("1e999").ok());  // non-finite
}

TEST(JsonParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseJson("{} extra").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  // Trailing whitespace alone is fine.
  EXPECT_TRUE(ParseJson("  {\"a\": 1}  \n").ok());
}

TEST(JsonParserTest, EnforcesDepthLimit) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string ok_depth;
  for (int i = 0; i < 30; ++i) ok_depth += '[';
  for (int i = 0; i < 30; ++i) ok_depth += ']';
  EXPECT_TRUE(ParseJson(ok_depth).ok());
}

TEST(JsonParserTest, ErrorsReportOffsets) {
  auto v = ParseJson("{\"a\": [1, }]}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("offset"), std::string::npos)
      << v.status();
}

}  // namespace
}  // namespace urr

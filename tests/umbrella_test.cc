// Compile-and-touch test for the umbrella header: everything a downstream
// user reaches through src/urr/urr.h must be visible and usable together.
#include "urr/urr.h"

#include <gtest/gtest.h>

namespace urr {
namespace {

TEST(UmbrellaTest, PublicSurfaceIsComplete) {
  // Graph + routing.
  auto network = PaperFigure1Network();
  ASSERT_TRUE(network.ok());
  DijkstraOracle oracle(*network);
  EXPECT_LT(oracle.Distance(0, 7), kInfiniteCost);
  auto ch = ContractionHierarchy::Build(*network);
  ASSERT_TRUE(ch.ok());
  ChQuery query(*ch);
  std::vector<NodeId> path;
  EXPECT_LT(query.Path(0, 7, &path), kInfiniteCost);
  EXPECT_FALSE(path.empty());

  // DIMACS round trip through the umbrella.
  auto reparsed = ParseDimacs(ToDimacsGr(*network));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->num_nodes(), network->num_nodes());

  // Pseudo nodes + cover + areas.
  auto split = SplitLongEdges(*network, 1.5);
  ASSERT_TRUE(split.ok());
  Rng rng(5);
  KspcOptions kspc;
  kspc.k = 2;
  auto cover = KShortestPathCover(split->network, kspc, &rng);
  ASSERT_TRUE(cover.ok());

  // Social.
  auto social = SocialGraph::Build(4, {{0, 1}, {1, 2}});
  ASSERT_TRUE(social.ok());
  EXPECT_GE(social->Jaccard(0, 2), 0);

  // Instance + utility + solvers + metrics, end to end.
  UrrInstance instance;
  instance.network = &*network;
  instance.social = &*social;
  instance.riders = {{0, 7, 10, 30, 0}, {4, 6, 12, 40, 1}};
  instance.vehicles = {{1, 2}, {5, 2}};
  instance.vehicle_utility = {0.5f, 0.5f, 0.5f, 0.5f};
  UtilityModel model(&instance, UtilityParams{0.33, 0.33});
  VehicleIndex index(*network, {1, 5});
  SolverContext ctx;
  ctx.oracle = &oracle;
  ctx.model = &model;
  ctx.vehicle_index = &index;
  ctx.rng = &rng;

  UrrSolution cf = SolveCostFirst(instance, &ctx);
  UrrSolution eg = SolveEfficientGreedy(instance, &ctx);
  UrrSolution ba = SolveBilateral(instance, &ctx);
  auto opt = SolveOptimal(instance, &ctx);
  ASSERT_TRUE(opt.ok());
  for (const UrrSolution* sol : {&cf, &eg, &ba, &*opt}) {
    EXPECT_TRUE(sol->Validate(instance).ok());
  }
  EXPECT_GE(opt->TotalUtility(model) + 1e-9, ba.TotalUtility(model));
  const SolutionMetrics metrics = ComputeMetrics(instance, model, ba);
  EXPECT_LE(metrics.total_utility,
            UpperBoundUtility(instance, model, &index) + 1e-9);

  // Scheduling structures reachable too.
  TransferSequence seq(1, 0, 2, &oracle);
  auto plan = ArrangeSingleRider(&seq, instance.Trip(0));
  EXPECT_TRUE(plan.ok());
  auto reorder = FindBestInsertionWithReordering(seq, instance.Trip(1));
  KineticTree tree(1, 0, 2, &oracle);
  EXPECT_TRUE(tree.Insert(instance.Trip(0)).ok());
  auto route = ExpandScheduleRoute(seq, &query);
  EXPECT_TRUE(route.ok());

  // Online dispatcher.
  OnlineDispatcher online(&instance, &ctx, OnlineObjective::kMinCostIncrease);
  online.DispatchAll({0, 1});
  EXPECT_TRUE(online.solution().Validate(instance).ok());
  (void)reorder;

  // Cost model.
  GbsCostModel cost_model;
  cost_model.s = 1000;
  cost_model.m = 100;
  cost_model.n = 10;
  EXPECT_GT(cost_model.BestEta(), 0);
}

}  // namespace
}  // namespace urr

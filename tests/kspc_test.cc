#include "cover/kspc.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cover/areas.h"
#include "graph/generators.h"

namespace urr {
namespace {

TEST(KspcTest, RejectsBadK) {
  Rng rng(1);
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  KspcOptions opt;
  opt.k = 1;
  EXPECT_FALSE(KShortestPathCover(*g, opt, &rng).ok());
}

TEST(KspcTest, LineGraphCover) {
  // Path 0-1-2-3-4 (two-way). For k=2 every edge (2-vertex shortest path)
  // must be covered: the cover is a vertex cover of the path, size >= 2.
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 5; ++v) {
    edges.push_back({v, v + 1, 1});
    edges.push_back({v + 1, v, 1});
  }
  auto g = RoadNetwork::Build(5, edges);
  ASSERT_TRUE(g.ok());
  Rng rng(2);
  KspcOptions opt;
  opt.k = 2;
  auto cover = KShortestPathCover(*g, opt, &rng);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(VerifyKspc(*g, *cover, 2));
  EXPECT_GE(cover->size(), 2u);
  EXPECT_LT(cover->size(), 5u);  // pruning must remove something
}

class KspcPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(KspcPropertyTest, CoverSatisfiesDefinitionOnRandomGrids) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  GridCityOptions opt;
  opt.width = 8;
  opt.height = 8;
  opt.keep_probability = 0.9;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  KspcOptions kopt;
  kopt.k = k;
  auto cover = KShortestPathCover(*g, kopt, &rng);
  ASSERT_TRUE(cover.ok());
  // The definition: no shortest path with k vertices avoids the cover.
  EXPECT_TRUE(VerifyKspc(*g, *cover, k));
  // Non-trivial: the pruning must shrink the cover below |V|.
  EXPECT_LT(cover->size(), static_cast<size_t>(g->num_nodes()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KspcPropertyTest,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Values(7, 8)),
    [](const auto& info) {
      std::string name = "k";
      name += std::to_string(std::get<0>(info.param));
      name += "seed";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

TEST(KspcTest, LargerKGivesSmallerCover) {
  Rng rng(9);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  size_t prev = static_cast<size_t>(g->num_nodes()) + 1;
  for (int k : {2, 3, 5}) {
    KspcOptions kopt;
    kopt.k = k;
    auto cover = KShortestPathCover(*g, kopt, &rng);
    ASSERT_TRUE(cover.ok());
    EXPECT_LT(cover->size(), prev);
    prev = cover->size();
  }
}

class KspcSamplingTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(KspcSamplingTest, SamplingCoverIsValid) {
  const int k = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed);
  GridCityOptions opt;
  opt.width = 8;
  opt.height = 8;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  KspcOptions kopt;
  kopt.k = k;
  auto cover = KShortestPathCoverSampling(*g, kopt, &rng);
  ASSERT_TRUE(cover.ok());
  EXPECT_TRUE(VerifyKspc(*g, *cover, k));
  EXPECT_LT(cover->size(), static_cast<size_t>(g->num_nodes()));
  EXPECT_GT(cover->size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KspcSamplingTest,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Values(17, 18)),
    [](const auto& info) {
      std::string name = "k";
      name += std::to_string(std::get<0>(info.param));
      name += "seed";
      name += std::to_string(std::get<1>(info.param));
      return name;
    });

TEST(KspcTest, PruningCoverUsuallySmallerThanSampling) {
  Rng rng(19);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  KspcOptions kopt;
  kopt.k = 3;
  auto pruning = KShortestPathCover(*g, kopt, &rng);
  auto sampling = KShortestPathCoverSampling(*g, kopt, &rng);
  ASSERT_TRUE(pruning.ok() && sampling.ok());
  // Both valid; pruning should not be dramatically worse (paper: pruning is
  // the better construction).
  EXPECT_LE(pruning->size(), sampling->size() * 2);
}

TEST(KspcTest, SamplingRejectsBadK) {
  Rng rng(1);
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  KspcOptions opt;
  opt.k = 1;
  EXPECT_FALSE(KShortestPathCoverSampling(*g, opt, &rng).ok());
}

TEST(KspcTest, VerifierDetectsViolations) {
  // Path 0-1-2 with empty cover: the 2-vertex shortest path 0-1 is
  // uncovered.
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(VerifyKspc(*g, {}, 2));
  EXPECT_TRUE(VerifyKspc(*g, {1}, 2));   // middle vertex hits every edge
  EXPECT_FALSE(VerifyKspc(*g, {0}, 2));  // edge 1-2 uncovered
  EXPECT_TRUE(VerifyKspc(*g, {0, 1, 2}, 2));
}

TEST(AreasTest, EveryNodeAttachedToClosestKey) {
  Rng rng(10);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  KspcOptions kopt;
  kopt.k = 3;
  auto cover = KShortestPathCover(*g, kopt, &rng);
  ASSERT_TRUE(cover.ok());
  auto areas = BuildAreas(*g, *cover);
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->num_areas(), static_cast<int>(cover->size()));
  // Total membership covers every node exactly once.
  size_t members = 0;
  for (const auto& m : areas->members) members += m.size();
  EXPECT_EQ(members, static_cast<size_t>(g->num_nodes()));
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    ASSERT_GE(areas->area_of_node[static_cast<size_t>(v)], 0);
    ASSERT_LT(areas->area_of_node[static_cast<size_t>(v)], areas->num_areas());
  }
  // Key vertices belong to their own areas.
  for (int a = 0; a < areas->num_areas(); ++a) {
    EXPECT_EQ(areas->area_of_node[static_cast<size_t>(
                  areas->key_vertex[static_cast<size_t>(a)])],
              a);
  }
}

TEST(AreasTest, RejectsBadCover) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(BuildAreas(*g, {}).ok());
  EXPECT_FALSE(BuildAreas(*g, {0, 0}).ok());
  EXPECT_FALSE(BuildAreas(*g, {5}).ok());
}

TEST(AreasTest, SingleKeyGetsEverything) {
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {1, 2, 1}});
  ASSERT_TRUE(g.ok());
  auto areas = BuildAreas(*g, {1});
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->num_areas(), 1);
  EXPECT_EQ(areas->members[0].size(), 3u);
}

}  // namespace
}  // namespace urr

#include "urr/optimal.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "spatial/vehicle_index.h"
#include "urr/bilateral.h"
#include "urr/cost_first.h"
#include "urr/greedy.h"

namespace urr {
namespace {

/// Builds a tiny instance on the paper's Figure-1 network.
struct TinyWorld {
  RoadNetwork network;
  UrrInstance instance;
  std::unique_ptr<DijkstraOracle> oracle;
  std::unique_ptr<UtilityModel> model;
  std::unique_ptr<VehicleIndex> index;
  Rng rng{1};

  SolverContext Context() {
    SolverContext ctx;
    ctx.oracle = oracle.get();
    ctx.model = model.get();
    ctx.vehicle_index = index.get();
    ctx.rng = &rng;
    return ctx;
  }
};

std::unique_ptr<TinyWorld> MakeTiny(int num_riders, int num_vehicles,
                                    uint64_t seed, UtilityParams params = {}) {
  auto w = std::make_unique<TinyWorld>();
  w->rng = Rng(seed);
  auto g = PaperFigure1Network();
  EXPECT_TRUE(g.ok());
  w->network = *std::move(g);
  w->oracle = std::make_unique<DijkstraOracle>(w->network);
  w->instance.network = &w->network;
  for (int i = 0; i < num_riders; ++i) {
    Rider r;
    r.source = static_cast<NodeId>(w->rng.UniformInt(0, 7));
    do {
      r.destination = static_cast<NodeId>(w->rng.UniformInt(0, 7));
    } while (r.destination == r.source);
    r.pickup_deadline = w->rng.Uniform(4, 12);
    r.dropoff_deadline = r.pickup_deadline + w->rng.Uniform(4, 10);
    w->instance.riders.push_back(r);
  }
  std::vector<NodeId> locations;
  for (int j = 0; j < num_vehicles; ++j) {
    const NodeId loc = static_cast<NodeId>(w->rng.UniformInt(0, 7));
    w->instance.vehicles.push_back({loc, 2});
    locations.push_back(loc);
  }
  // Random μ_v matrix.
  for (int i = 0; i < num_riders; ++i) {
    for (int j = 0; j < num_vehicles; ++j) {
      w->instance.vehicle_utility.push_back(
          static_cast<float>(w->rng.Uniform()));
    }
  }
  w->model = std::make_unique<UtilityModel>(&w->instance, params);
  w->index = std::make_unique<VehicleIndex>(w->network, locations);
  return w;
}

TEST(OptimalTest, SingleRiderSingleVehicle) {
  auto w = MakeTiny(1, 1, 3);
  SolverContext ctx = w->Context();
  auto sol = SolveOptimal(w->instance, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status();
  EXPECT_TRUE(sol->Validate(w->instance).ok());
  // Either the rider is servable (one pickup+dropoff) or not (empty).
  if (sol->NumAssigned() == 1) {
    EXPECT_EQ(sol->schedules[0].num_stops(), 2);
  }
}

TEST(OptimalTest, RejectsOversizedInstance) {
  auto w = MakeTiny(3, 1, 4);
  SolverContext ctx = w->Context();
  OptimalOptions opt;
  opt.max_riders = 2;
  EXPECT_EQ(SolveOptimal(w->instance, &ctx, opt).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(OptimalTest, BudgetExhaustionReported) {
  auto w = MakeTiny(6, 2, 5);
  SolverContext ctx = w->Context();
  OptimalOptions opt;
  opt.max_search_nodes = 10;
  EXPECT_EQ(SolveOptimal(w->instance, &ctx, opt).status().code(),
            StatusCode::kOutOfRange);
}

class OptimalDominanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalDominanceTest, OptimalDominatesHeuristics) {
  // The exact solver's utility upper-bounds CF, EG and BA on any instance.
  auto w = MakeTiny(6, 2, GetParam(), UtilityParams{0.33, 0.33});
  SolverContext ctx = w->Context();
  auto opt = SolveOptimal(w->instance, &ctx);
  ASSERT_TRUE(opt.ok()) << opt.status();
  ASSERT_TRUE(opt->Validate(w->instance).ok());
  const double best = opt->TotalUtility(*w->model);

  UrrSolution cf = SolveCostFirst(w->instance, &ctx);
  UrrSolution eg = SolveEfficientGreedy(w->instance, &ctx);
  UrrSolution ba = SolveBilateral(w->instance, &ctx);
  EXPECT_GE(best + 1e-9, cf.TotalUtility(*w->model));
  EXPECT_GE(best + 1e-9, eg.TotalUtility(*w->model));
  EXPECT_GE(best + 1e-9, ba.TotalUtility(*w->model));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalDominanceTest,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 17));

TEST(OptimalTest, KnapsackStyleInstance) {
  // Mirrors the Theorem-2.1 reduction: one vehicle at a hub, riders with
  // zero-length trips at spoke nodes, deadline W. OPT must choose the
  // utility-maximal subset reachable within the deadlines.
  // Star network: hub 0, spokes 1..3 with costs 2, 3, 4 (two-way).
  auto g = RoadNetwork::Build(4, {{0, 1, 2}, {1, 0, 2}, {0, 2, 3}, {2, 0, 3},
                                  {0, 3, 4}, {3, 0, 4}});
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  UrrInstance inst;
  inst.network = &*g;
  const double kW = 10;  // knapsack capacity as a shared deadline
  // Zero-length trips: source == destination is not allowed by the builder,
  // so make destination the hub-adjacent... use source=spoke, dest=spoke
  // itself is degenerate; instead give each rider a trip back to the hub.
  // weights: serving rider i costs 2*c(spoke) - c(spoke) = c(spoke) extra.
  inst.riders = {
      {1, 0, kW, kW, -1},  // cost 2 each way
      {2, 0, kW, kW, -1},  // cost 3
      {3, 0, kW, kW, -1},  // cost 4
  };
  inst.vehicles = {{0, 1}};  // capacity 1: trips are served sequentially
  // values via μ_v: rider 0 -> 0.3, rider 1 -> 0.9, rider 2 -> 0.5.
  inst.vehicle_utility = {0.3f, 0.9f, 0.5f};
  UtilityModel model(&inst, UtilityParams{1.0, 0.0});  // α=1: value = μ_v
  Rng rng(1);
  VehicleIndex index(*g, {0});
  SolverContext ctx;
  ctx.oracle = &oracle;
  ctx.model = &model;
  ctx.vehicle_index = &index;
  ctx.rng = &rng;
  auto sol = SolveOptimal(inst, &ctx);
  ASSERT_TRUE(sol.ok()) << sol.status();
  // Serving all three costs 2+2+3+3+4 = 14 > deadline for the last dropoff;
  // the best feasible subset by value is riders 1 (0.9) and 2 (0.5):
  // serve rider 1 (3 out, 3 back) then rider 2 (4 out): dropoff at hub...
  // Exact arithmetic aside, OPT must at least reach value 1.4 - epsilon of
  // the heuristics and dominate the greedy pick.
  const double value = sol->TotalUtility(model);
  // Feasibility analysis: {rider1, rider0} fits exactly (3+3+2+2 = 10),
  // every subset containing rider2 alongside rider1 breaks a deadline, so
  // the optimum value is 0.9 + 0.3 = 1.2.
  EXPECT_NEAR(value, 1.2, 1e-6);  // mu_v is stored as float
  EXPECT_TRUE(sol->Validate(inst).ok());
}

TEST(OptimalTest, TightDeadlinesYieldEmptySolution) {
  auto w = MakeTiny(3, 1, 6);
  for (Rider& r : w->instance.riders) {
    r.pickup_deadline = 0.001;  // unreachable
    r.dropoff_deadline = 0.002;
  }
  SolverContext ctx = w->Context();
  auto sol = SolveOptimal(w->instance, &ctx);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->NumAssigned(), 0);
  EXPECT_DOUBLE_EQ(sol->TotalUtility(*w->model), 0);
}

}  // namespace
}  // namespace urr

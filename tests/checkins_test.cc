#include "social/checkins.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

TEST(CheckInsTest, GeneratesRequestedVolume) {
  Rng rng(91);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto map = CheckInMap::Generate(*g, /*num_users=*/50, /*per_user=*/4, &rng);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->num_checkins(), 200);
  for (const CheckIn& c : map->checkins()) {
    EXPECT_GE(c.user, 0);
    EXPECT_LT(c.user, 50);
    EXPECT_GE(c.node, 0);
    EXPECT_LT(c.node, g->num_nodes());
  }
}

TEST(CheckInsTest, NearestUserIsTotal) {
  Rng rng(92);
  GridCityOptions opt;
  opt.width = 8;
  opt.height = 8;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto map = CheckInMap::Generate(*g, 10, 2, &rng);
  ASSERT_TRUE(map.ok());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    const UserId u = map->NearestUser(v);
    EXPECT_GE(u, 0);
    EXPECT_LT(u, 10);
  }
}

TEST(CheckInsTest, CheckInNodeMapsToItsOwnUser) {
  Rng rng(93);
  GridCityOptions opt;
  opt.width = 8;
  opt.height = 8;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto map = CheckInMap::Generate(*g, 5, 1, &rng);
  ASSERT_TRUE(map.ok());
  // A node with a check-in resolves to some user that checked in there
  // (ties between users at distance 0 broken arbitrarily).
  for (const CheckIn& c : map->checkins()) {
    const UserId resolved = map->NearestUser(c.node);
    bool same_node = false;
    for (const CheckIn& other : map->checkins()) {
      if (other.node == c.node && other.user == resolved) same_node = true;
    }
    EXPECT_TRUE(same_node);
  }
}

TEST(CheckInsTest, RejectsBadArguments) {
  Rng rng(94);
  GridCityOptions opt;
  opt.width = 4;
  opt.height = 4;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(CheckInMap::Generate(*g, 0, 1, &rng).ok());
  EXPECT_FALSE(CheckInMap::Generate(*g, 1, 0, &rng).ok());
  auto empty = RoadNetwork::Build(0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(CheckInMap::Generate(*empty, 1, 1, &rng).ok());
}

TEST(CheckInsTest, CheckInsClusterAroundHomes) {
  Rng rng(95);
  GridCityOptions opt;
  opt.width = 20;
  opt.height = 20;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto map = CheckInMap::Generate(*g, 40, 8, &rng);
  ASSERT_TRUE(map.ok());
  // For each user, the spread of their check-ins should be far below the
  // map diagonal (they random-walk at most 6 hops from home).
  double diag = EuclideanDistance(g->coord(0), g->coord(g->num_nodes() - 1));
  int tight_users = 0;
  for (UserId u = 0; u < 40; ++u) {
    double max_pair = 0;
    std::vector<NodeId> nodes;
    for (const CheckIn& c : map->checkins()) {
      if (c.user == u) nodes.push_back(c.node);
    }
    for (size_t a = 0; a < nodes.size(); ++a) {
      for (size_t b = a + 1; b < nodes.size(); ++b) {
        max_pair = std::max(
            max_pair, EuclideanDistance(g->coord(nodes[a]), g->coord(nodes[b])));
      }
    }
    if (max_pair < diag / 2) ++tight_users;
  }
  EXPECT_GT(tight_users, 30);
}

}  // namespace
}  // namespace urr

// Crash-safety plumbing battery (DESIGN.md §15): journal record framing,
// the torn-tail truncation/bit-flip property sweep (mirroring the .urrx
// corruption battery), service-checkpoint round-trips with fallback to the
// newest valid file, and the dedup cache's first-wins/eviction contract.
// Every damaged input must yield a precise Status and a recovery from the
// surviving prefix — never a crash; the sanitizer CI jobs run this binary
// under ASan/TSan.
#include "server/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace urr {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string TempDirFor(const std::string& name) {
  const std::string dir = TempPath(name);
  // Start from an empty directory: leftovers from a previous run would
  // feed the newest-first checkpoint listing stale (even damaged) files.
  const std::string scrub = "rm -rf " + dir;
  EXPECT_EQ(std::system(scrub.c_str()), 0);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  ASSERT_EQ(std::fclose(f), 0);
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::vector<std::string> SamplePayloads() {
  return {
      "{\"op\":\"submit_rider\",\"id\":0,\"req_id\":0,\"rider\":7,"
      "\"time\":1.5}",
      "{\"op\":\"cancel_rider\",\"id\":1,\"req_id\":15,\"rider\":7,"
      "\"time\":2}",
      "{\"op\":\"inject_fault\",\"id\":2,\"req_id\":-1,\"kind\":"
      "\"breakdown\",\"vehicle\":3,\"time\":2.5}",
      "{\"op\":\"tick\",\"id\":3,\"req_id\":-1,\"time\":99.25}",
  };
}

/// The sample journal as raw bytes plus each record's end offset.
std::string BuildJournalBytes(std::vector<uint64_t>* boundaries) {
  std::string bytes;
  for (const std::string& p : SamplePayloads()) {
    bytes += EncodeJournalRecord(p);
    if (boundaries != nullptr) boundaries->push_back(bytes.size());
  }
  return bytes;
}

TEST(JournalTest, AppendScanRoundTrip) {
  const std::string path = TempPath("journal_roundtrip.wal");
  std::remove(path.c_str());
  const std::vector<std::string> payloads = SamplePayloads();
  {
    auto journal = RequestJournal::Open(path, /*fsync=*/true);
    ASSERT_TRUE(journal.ok()) << journal.status();
    for (const std::string& p : payloads) {
      ASSERT_TRUE(journal->Append(p).ok());
    }
    EXPECT_EQ(journal->appended(), static_cast<int64_t>(payloads.size()));
  }
  auto scan = ScanJournal(path);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->tail.ok()) << scan->tail;
  EXPECT_EQ(scan->payloads, payloads);
  EXPECT_EQ(scan->valid_bytes, scan->file_bytes);

  // Reopening for append preserves the prefix.
  {
    auto journal = RequestJournal::Open(path, /*fsync=*/false);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal->Append("{\"op\":\"tick\",\"time\":100}").ok());
  }
  auto rescan = ScanJournal(path);
  ASSERT_TRUE(rescan.ok());
  ASSERT_EQ(rescan->payloads.size(), payloads.size() + 1);
  EXPECT_EQ(rescan->payloads.back(), "{\"op\":\"tick\",\"time\":100}");
}

TEST(JournalTest, MissingFileScansAsEmpty) {
  auto scan = ScanJournal(TempPath("journal_never_written.wal"));
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->tail.ok());
  EXPECT_TRUE(scan->payloads.empty());
  EXPECT_EQ(scan->file_bytes, 0u);
}

// Property sweep: truncating the file at EVERY byte length must yield the
// longest record prefix that fits, a precise non-OK tail Status for any cut
// off a record boundary, and a clean rescan after TruncateJournal — the
// recovery path for a crash mid-append.
TEST(JournalTest, TruncationAtEveryByteRecoversThePrefix) {
  std::vector<uint64_t> boundaries;
  const std::string bytes = BuildJournalBytes(&boundaries);
  const std::vector<std::string> payloads = SamplePayloads();
  const std::string path = TempPath("journal_truncation.wal");
  for (uint64_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFile(path, bytes.substr(0, cut));
    auto scan = ScanJournal(path);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": " << scan.status();
    // Records wholly inside the cut survive.
    size_t expect_records = 0;
    uint64_t expect_valid = 0;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      if (boundaries[i] <= cut) {
        expect_records = i + 1;
        expect_valid = boundaries[i];
      }
    }
    EXPECT_EQ(scan->payloads.size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(scan->valid_bytes, expect_valid) << "cut=" << cut;
    EXPECT_EQ(scan->file_bytes, cut);
    const bool on_boundary = cut == expect_valid;
    EXPECT_EQ(scan->tail.ok(), on_boundary)
        << "cut=" << cut << ": " << scan->tail;
    for (size_t i = 0; i < expect_records; ++i) {
      EXPECT_EQ(scan->payloads[i], payloads[i]);
    }
    // Recovery truncates the tail; the rescan must then be clean.
    ASSERT_TRUE(TruncateJournal(path, scan->valid_bytes).ok());
    auto rescan = ScanJournal(path);
    ASSERT_TRUE(rescan.ok());
    EXPECT_TRUE(rescan->tail.ok()) << "cut=" << cut << ": " << rescan->tail;
    EXPECT_EQ(rescan->payloads.size(), expect_records);
  }
}

// Property sweep: flipping one bit in EVERY byte of the file must never
// crash the scanner, and the records before the damaged one must survive.
TEST(JournalTest, BitFlipAtEveryByteIsDetected) {
  std::vector<uint64_t> boundaries;
  const std::string bytes = BuildJournalBytes(&boundaries);
  const std::vector<std::string> payloads = SamplePayloads();
  const std::string path = TempPath("journal_bitflip.wal");
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x10);
    WriteFile(path, damaged);
    auto scan = ScanJournal(path);
    ASSERT_TRUE(scan.ok()) << "flip at " << at << ": " << scan.status();
    // Records before the damaged one are untouched.
    size_t unharmed = 0;
    while (unharmed < boundaries.size() && boundaries[unharmed] <= at) {
      ++unharmed;
    }
    ASSERT_GE(scan->payloads.size(), unharmed) << "flip at " << at;
    for (size_t i = 0; i < unharmed; ++i) {
      EXPECT_EQ(scan->payloads[i], payloads[i]) << "flip at " << at;
    }
    // The damage must be detected: a non-OK tail at the damaged record —
    // except a flip inside a length prefix that still frames a checksum-
    // valid suffix, which is impossible here because the checksum follows
    // the length; any framing shift breaks the checksum.
    EXPECT_FALSE(scan->tail.ok()) << "flip at " << at << " went undetected";
    EXPECT_EQ(scan->payloads.size(), unharmed)
        << "flip at " << at << " did not end the valid prefix";
  }
}

TEST(JournalTest, ScanStatusesNameTheDefect) {
  const std::string path = TempPath("journal_status.wal");
  const std::string record = EncodeJournalRecord("{\"op\":\"tick\"}");

  // Torn header.
  WriteFile(path, record.substr(0, 5));
  auto torn_header = ScanJournal(path);
  ASSERT_TRUE(torn_header.ok());
  EXPECT_NE(torn_header->tail.message().find("record-header"),
            std::string::npos)
      << torn_header->tail;

  // Torn payload.
  WriteFile(path, record.substr(0, record.size() - 3));
  auto torn_payload = ScanJournal(path);
  ASSERT_TRUE(torn_payload.ok());
  EXPECT_NE(torn_payload->tail.message().find("payload bytes"),
            std::string::npos)
      << torn_payload->tail;

  // Implausible length.
  std::string huge = record;
  huge[0] = static_cast<char>(0x7f);
  WriteFile(path, huge);
  auto bad_length = ScanJournal(path);
  ASSERT_TRUE(bad_length.ok());
  EXPECT_NE(bad_length->tail.message().find("limit"), std::string::npos)
      << bad_length->tail;

  // Checksum mismatch (payload byte flipped).
  std::string corrupt = record;
  corrupt[corrupt.size() - 1] =
      static_cast<char>(corrupt[corrupt.size() - 1] ^ 1);
  WriteFile(path, corrupt);
  auto bad_sum = ScanJournal(path);
  ASSERT_TRUE(bad_sum.ok());
  EXPECT_NE(bad_sum->tail.message().find("checksum"), std::string::npos)
      << bad_sum->tail;
}

ServiceCheckpoint SampleCheckpoint(int64_t seq) {
  ServiceCheckpoint ckpt;
  ckpt.seq = seq;
  ckpt.dedup = {{0, "{\"ok\":true,\"result\":\"queued\"}"},
                {15, "{\"ok\":true,\"result\":\"cancelled\"}"},
                {seq, "{\"ok\":true}"}};
  ckpt.engine_checkpoint =
      "urrckpt 1\nseq " + std::to_string(seq) + "\nfake engine payload\n";
  return ckpt;
}

TEST(ServiceCheckpointTest, WriteReadRoundTrip) {
  const std::string dir = TempDirFor("ckpt_roundtrip");
  const ServiceCheckpoint ckpt = SampleCheckpoint(42);
  ASSERT_TRUE(WriteServiceCheckpoint(dir, ckpt).ok());
  auto list = ListServiceCheckpoints(dir);
  ASSERT_TRUE(list.ok()) << list.status();
  ASSERT_EQ(list->size(), 1u);
  EXPECT_EQ((*list)[0].first, 42);
  auto loaded = ReadServiceCheckpoint((*list)[0].second);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->seq, ckpt.seq);
  EXPECT_EQ(loaded->dedup, ckpt.dedup);
  EXPECT_EQ(loaded->engine_checkpoint, ckpt.engine_checkpoint);
}

TEST(ServiceCheckpointTest, ListOrdersNewestFirstAndSkipsTemp) {
  const std::string dir = TempDirFor("ckpt_order");
  for (const int64_t seq : {7, 300, 64}) {
    ASSERT_TRUE(WriteServiceCheckpoint(dir, SampleCheckpoint(seq)).ok());
  }
  WriteFile(dir + "/ckpt-000000000900.tmp", "half-written garbage");
  WriteFile(dir + "/unrelated.txt", "not a checkpoint");
  auto list = ListServiceCheckpoints(dir);
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0].first, 300);
  EXPECT_EQ((*list)[1].first, 64);
  EXPECT_EQ((*list)[2].first, 7);
}

// Damage sweep over a whole checkpoint file: truncation at every byte and a
// bit flip in every byte must both be rejected with a non-OK Status (the
// whole-file checksum catches anything the envelope parse does not) — this
// is what lets recovery fall back to an older file instead of loading a
// half-written snapshot.
TEST(ServiceCheckpointTest, CorruptionIsAlwaysRejected) {
  const std::string dir = TempDirFor("ckpt_corrupt");
  ASSERT_TRUE(WriteServiceCheckpoint(dir, SampleCheckpoint(9)).ok());
  auto list = ListServiceCheckpoints(dir);
  ASSERT_TRUE(list.ok());
  const std::string good_path = (*list)[0].second;
  const std::string bytes = ReadFile(good_path);
  ASSERT_FALSE(bytes.empty());
  const std::string damaged_path = dir + "/ckpt-000000000010";
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    WriteFile(damaged_path, bytes.substr(0, cut));
    EXPECT_FALSE(ReadServiceCheckpoint(damaged_path).ok())
        << "truncation to " << cut << " bytes was accepted";
  }
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string damaged = bytes;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x04);
    WriteFile(damaged_path, damaged);
    EXPECT_FALSE(ReadServiceCheckpoint(damaged_path).ok())
        << "bit flip at " << at << " was accepted";
  }
  // The intact sibling still loads — the fallback recovery path.
  EXPECT_TRUE(ReadServiceCheckpoint(good_path).ok());
}

TEST(DedupCacheTest, FirstExecutionWinsAndEvictionIsFifo) {
  DedupCache cache(3);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  cache.Insert(1, "first");
  cache.Insert(1, "second");  // a retry must NOT overwrite the original
  ASSERT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(*cache.Lookup(1), "first");
  EXPECT_EQ(cache.size(), 1);

  cache.Insert(2, "b");
  cache.Insert(3, "c");
  cache.Insert(4, "d");  // evicts 1 (FIFO)
  EXPECT_EQ(cache.size(), 3);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  ASSERT_NE(cache.Lookup(2), nullptr);
  EXPECT_EQ(*cache.Lookup(2), "b");
  ASSERT_NE(cache.Lookup(4), nullptr);

  // Entries() preserves insertion order — the checkpoint format relies on
  // it to rebuild the same eviction queue.
  const auto entries = cache.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].first, 2);
  EXPECT_EQ(entries[1].first, 3);
  EXPECT_EQ(entries[2].first, 4);
}

}  // namespace
}  // namespace urr

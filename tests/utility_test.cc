#include "urr/utility.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

TEST(TrajectoryUtilityTest, Equation5Values) {
  // σ = 1 -> μ_t = 1 exactly.
  EXPECT_DOUBLE_EQ(TrajectoryUtility(1.0), 1.0);
  // σ = 2 -> 2 / (1 + e).
  EXPECT_NEAR(TrajectoryUtility(2.0), 2.0 / (1.0 + std::exp(1.0)), 1e-12);
  // Monotone decreasing.
  EXPECT_GT(TrajectoryUtility(1.2), TrajectoryUtility(1.5));
  EXPECT_GT(TrajectoryUtility(1.5), TrajectoryUtility(3.0));
  // Bounded in (0, 1].
  EXPECT_GT(TrajectoryUtility(50.0), 0.0);
  EXPECT_LE(TrajectoryUtility(50.0), 1.0);
  // σ < 1 clamps (float noise guard).
  EXPECT_DOUBLE_EQ(TrajectoryUtility(0.999), 1.0);
}

class UtilityModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Line network 0..4 with unit legs of cost 10, two-way.
    std::vector<Edge> edges;
    for (NodeId v = 0; v + 1 < 5; ++v) {
      edges.push_back({v, v + 1, 10});
      edges.push_back({v + 1, v, 10});
    }
    auto g = RoadNetwork::Build(5, edges);
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
    // Social: users 0,1 fully similar (identical friend sets), user 2 alone.
    auto social = SocialGraph::Build(5, {{0, 3}, {0, 4}, {1, 3}, {1, 4}});
    ASSERT_TRUE(social.ok());
    social_ = std::make_unique<SocialGraph>(*std::move(social));

    instance_.network = network_.get();
    instance_.social = social_.get();
    instance_.riders = {
        {0, 2, 1e5, 1e6, /*user=*/0},  // rider 0: 0 -> 2
        {1, 3, 1e5, 1e6, /*user=*/1},  // rider 1: 1 -> 3
        {0, 4, 1e5, 1e6, /*user=*/2},  // rider 2: 0 -> 4
    };
    instance_.vehicles = {{0, 3}, {4, 3}};
    // μ_v matrix rows: rider x vehicle.
    instance_.vehicle_utility = {0.2f, 0.4f, 0.6f, 0.3f, 0.8f, 1.0f};
  }

  UrrInstance instance_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<SocialGraph> social_;
};

TEST_F(UtilityModelTest, VehicleUtilityLookup) {
  EXPECT_DOUBLE_EQ(instance_.VehicleUtility(0, 1), 0.4f);
  EXPECT_DOUBLE_EQ(instance_.VehicleUtility(2, 0), 0.8f);
}

TEST_F(UtilityModelTest, SimilarityUsesJaccard) {
  EXPECT_DOUBLE_EQ(instance_.Similarity(0, 1), 1.0);  // identical friend sets
  EXPECT_DOUBLE_EQ(instance_.Similarity(0, 2), 0.0);
}

TEST_F(UtilityModelTest, SoloRiderNoDetour) {
  UtilityModel model(&instance_, {0.0, 0.0});  // trajectory only
  TransferSequence seq(0, 0, 3, oracle_.get());
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {2, 0, StopType::kDropoff, 1e6});
  // Onboard cost 20 == direct cost 20 -> σ = 1 -> μ_t = 1.
  EXPECT_DOUBLE_EQ(model.TrajectoryRelated(0, seq), 1.0);
  EXPECT_DOUBLE_EQ(model.RiderUtility(0, 0, seq), 1.0);
  // Solo rider has no co-riders -> μ_r = 0.
  EXPECT_DOUBLE_EQ(model.RiderRelated(0, seq), 0.0);
}

TEST_F(UtilityModelTest, DetourLowersTrajectoryUtility) {
  UtilityModel model(&instance_, {0.0, 0.0});
  // Rider 0 (0 -> 2) routed 0 .. 3 .. back 2: onboard cost 30+10=40, σ=2.
  TransferSequence seq(0, 0, 3, oracle_.get());
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {3, 1, StopType::kPickup, 1e5});
  seq.InsertStop(2, {2, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {1, 1, StopType::kDropoff, 1e6});
  EXPECT_NEAR(model.TrajectoryRelated(0, seq), TrajectoryUtility(2.0), 1e-12);
}

TEST_F(UtilityModelTest, RiderRelatedWeightsByLegCost) {
  UtilityModel model(&instance_, {0.0, 1.0});  // rider-related only
  // Shared segment: pick r0 at 0, pick r1 at 1, drop r0 at 2, drop r1 at 3.
  TransferSequence seq(0, 0, 3, oracle_.get());
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {1, 1, StopType::kPickup, 1e5});
  seq.InsertStop(2, {2, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {3, 1, StopType::kDropoff, 1e6});
  // Rider 0 onboard legs 1 (cost 10, alone? no - r1 not yet onboard during
  // leg 1: R = {r0}) and 2 (cost 10, with r1).
  // Eq. 2: leg 1 contributes 0 (no co-rider), leg 2 contributes
  // (10/20) * s(0,1) = 0.5 * 1 = 0.5.
  EXPECT_NEAR(model.RiderRelated(0, seq), 0.5, 1e-12);
  // Rider 1 onboard legs 2,3; co-rider only on leg 2: 0.5 * 1.
  EXPECT_NEAR(model.RiderRelated(1, seq), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(model.RiderUtility(0, 0, seq), 0.5);
}

TEST_F(UtilityModelTest, DissimilarCoRiderContributesZero) {
  UtilityModel model(&instance_, {0.0, 1.0});
  // Riders 0 and 2 share (similarity 0).
  TransferSequence seq(0, 0, 3, oracle_.get());
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {0, 2, StopType::kPickup, 1e5});
  seq.InsertStop(2, {2, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {4, 2, StopType::kDropoff, 1e6});
  EXPECT_DOUBLE_EQ(model.RiderRelated(0, seq), 0.0);
}

TEST_F(UtilityModelTest, Equation1Mixing) {
  UtilityModel model(&instance_, {0.25, 0.25});
  TransferSequence seq(0, 0, 3, oracle_.get());
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {2, 0, StopType::kDropoff, 1e6});
  // μ = 0.25*μ_v(0,0) + 0.25*0 + 0.5*1 = 0.25*0.2 + 0.5.
  EXPECT_NEAR(model.RiderUtility(0, 0, seq), 0.25 * 0.2 + 0.5, 1e-9);
}

TEST_F(UtilityModelTest, ScheduleUtilitySumsRiders) {
  UtilityModel model(&instance_, {0.5, 0.0});
  TransferSequence seq(0, 0, 3, oracle_.get());
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {2, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(2, {1, 1, StopType::kPickup, 1e5});
  seq.InsertStop(3, {3, 1, StopType::kDropoff, 1e6});
  const double expected =
      model.RiderUtility(0, 0, seq) + model.RiderUtility(1, 0, seq);
  EXPECT_NEAR(model.ScheduleUtility(0, seq), expected, 1e-12);
}

TEST_F(UtilityModelTest, UtilityBoundsOnRandomSchedules) {
  // Property: μ ∈ [0, 1] per rider for any (α, β) mix and any valid
  // schedule, since all three components are in [0, 1].
  Rng rng(131);
  GridCityOptions gopt;
  gopt.width = 8;
  gopt.height = 8;
  auto g = GenerateGridCity(gopt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  UrrInstance inst;
  inst.network = &*g;
  inst.social = social_.get();
  for (int i = 0; i < 6; ++i) {
    Rider r;
    r.source = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    r.destination = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    r.pickup_deadline = 1e6;
    r.dropoff_deadline = 1e7;
    r.user = static_cast<UserId>(rng.UniformInt(0, 4));
    inst.riders.push_back(r);
  }
  inst.vehicles = {{0, 6}};
  for (const auto& params :
       {UtilityParams{0, 0}, UtilityParams{1, 0}, UtilityParams{0, 1},
        UtilityParams{0.33, 0.33}}) {
    UtilityModel model(&inst, params);
    TransferSequence seq(0, 0, 6, &oracle);
    for (int i = 0; i < 6; ++i) {
      if (inst.riders[static_cast<size_t>(i)].source ==
          inst.riders[static_cast<size_t>(i)].destination) {
        continue;
      }
      const int w = seq.num_stops();
      seq.InsertStop(w, {inst.riders[static_cast<size_t>(i)].source, i,
                         StopType::kPickup, 1e6});
      seq.InsertStop(w + 1, {inst.riders[static_cast<size_t>(i)].destination,
                             i, StopType::kDropoff, 1e7});
    }
    for (RiderId i : seq.Riders()) {
      const double mu = model.RiderUtility(i, 0, seq);
      EXPECT_GE(mu, 0.0);
      EXPECT_LE(mu, 1.0 + 1e-12);
    }
  }
}

}  // namespace
}  // namespace urr

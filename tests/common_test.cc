// Tests for the small common utilities: env-var config, logging, stopwatch.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/env.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace urr {
namespace {

TEST(EnvTest, DoubleParsing) {
  ::setenv("URR_TEST_D", "2.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("URR_TEST_D", 1.0), 2.5);
  ::setenv("URR_TEST_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("URR_TEST_D", 1.0), 1.0);
  ::unsetenv("URR_TEST_D");
  EXPECT_DOUBLE_EQ(GetEnvDouble("URR_TEST_D", 7.0), 7.0);
}

TEST(EnvTest, IntParsing) {
  ::setenv("URR_TEST_I", "42", 1);
  EXPECT_EQ(GetEnvInt("URR_TEST_I", 0), 42);
  ::setenv("URR_TEST_I", "-3", 1);
  EXPECT_EQ(GetEnvInt("URR_TEST_I", 0), -3);
  ::setenv("URR_TEST_I", "zzz", 1);
  EXPECT_EQ(GetEnvInt("URR_TEST_I", 9), 9);
  ::unsetenv("URR_TEST_I");
  EXPECT_EQ(GetEnvInt("URR_TEST_I", 5), 5);
}

TEST(EnvTest, StringFallback) {
  ::unsetenv("URR_TEST_S");
  EXPECT_EQ(GetEnvString("URR_TEST_S", "dflt"), "dflt");
  ::setenv("URR_TEST_S", "hello", 1);
  EXPECT_EQ(GetEnvString("URR_TEST_S", "dflt"), "hello");
  ::unsetenv("URR_TEST_S");
}

TEST(EnvTest, BenchKnobs) {
  ::unsetenv("URR_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(BenchScale(), 0.2);
  ::setenv("URR_BENCH_SCALE", "1.0", 1);
  EXPECT_DOUBLE_EQ(BenchScale(), 1.0);
  ::unsetenv("URR_BENCH_SCALE");
  ::unsetenv("URR_SEED");
  EXPECT_EQ(BenchSeed(), 42u);
  ::setenv("URR_SEED", "7", 1);
  EXPECT_EQ(BenchSeed(), 7u);
  ::unsetenv("URR_SEED");
}

TEST(LoggingTest, LevelGate) {
  const LogLevel old = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // Emitting below the gate must be a no-op (no crash; output suppressed).
  URR_LOG(kDebug) << "suppressed debug " << 42;
  URR_LOG(kInfo) << "suppressed info";
  SetLogLevel(LogLevel::kDebug);
  URR_LOG(kDebug) << "emitted (to stderr)";
  SetLogLevel(old);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i * 0.5;
  const double t1 = w.ElapsedSeconds();
  EXPECT_GT(t1, 0);
  EXPECT_GE(w.ElapsedMillis(), t1 * 1000 * 0.5);
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), t1 + 1.0);
}

}  // namespace
}  // namespace urr

#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace urr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::DeadlineViolated("x").code(),
            StatusCode::kDeadlineViolated);
  EXPECT_EQ(Status::Infeasible("x").code(), StatusCode::kInfeasible);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::InvalidArgument("bad k value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad k value");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("rider 7");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "rider 7");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "Infeasible");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineViolated),
               "DeadlineViolated");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::IOError("disk"); };
  auto outer = [&]() -> Status {
    URR_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 7;
  };
  auto run = [&](bool fail) -> Result<int> {
    URR_ASSIGN_OR_RETURN(int v, make(fail));
    return v + 1;
  };
  EXPECT_EQ(*run(false), 8);
  EXPECT_EQ(run(true).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace urr

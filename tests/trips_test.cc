#include "trips/trip_generator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "routing/dijkstra.h"
#include "trips/instance_builder.h"
#include "trips/poisson_model.h"

namespace urr {
namespace {

Result<RoadNetwork> City(Rng* rng, int side = 25) {
  GridCityOptions opt;
  opt.width = side;
  opt.height = side;
  return GenerateGridCity(opt, rng);
}

TEST(TripGeneratorTest, GeneratesConsistentRecords) {
  Rng rng(101);
  auto g = City(&rng);
  ASSERT_TRUE(g.ok());
  TripGenOptions opt;
  opt.num_trips = 300;
  auto records = GenerateTrips(*g, opt, &rng);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 300u);
  DijkstraEngine engine(*g);
  for (const TripRecord& r : *records) {
    EXPECT_NE(r.pickup_node, r.dropoff_node);
    EXPECT_GE(r.pickup_time, 0);
    EXPECT_LT(r.pickup_time, opt.window);
    // Duration is the exact shortest-path cost.
    EXPECT_NEAR(r.duration, engine.Distance(r.pickup_node, r.dropoff_node),
                1e-9);
  }
}

TEST(TripGeneratorTest, DurationShapeMatchesFig7) {
  Rng rng(102);
  auto g = City(&rng, 40);
  ASSERT_TRUE(g.ok());
  TripGenOptions opt;
  opt.num_trips = 2000;
  auto records = GenerateTrips(*g, opt, &rng);
  ASSERT_TRUE(records.ok());
  int under_1000 = 0;
  for (const TripRecord& r : *records) under_1000 += (r.duration < 1000);
  // Fig. 7: more than half of taxi trips take < 1000 s.
  EXPECT_GT(under_1000, 1000);
}

TEST(TripGeneratorTest, PickupsAreSkewedToHotspots) {
  Rng rng(103);
  auto g = City(&rng);
  ASSERT_TRUE(g.ok());
  TripGenOptions opt;
  opt.num_trips = 2000;
  auto records = GenerateTrips(*g, opt, &rng);
  ASSERT_TRUE(records.ok());
  std::vector<int> counts(static_cast<size_t>(g->num_nodes()), 0);
  for (const TripRecord& r : *records) {
    ++counts[static_cast<size_t>(r.pickup_node)];
  }
  std::sort(counts.rbegin(), counts.rend());
  // Top-5% of nodes originate a disproportionate share of trips.
  int64_t top = 0;
  const size_t five_pct = counts.size() / 20;
  for (size_t i = 0; i < five_pct; ++i) top += counts[i];
  EXPECT_GT(top, 2000 / 5);
}

TEST(TripGeneratorTest, HistogramBucketsEverything) {
  TripRecords records = {{0, 1, 0, 100}, {0, 1, 0, 550}, {0, 1, 0, 99999}};
  auto hist = DurationHistogram(records, 500, 4);
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 1);
  EXPECT_EQ(hist[1], 1);
  EXPECT_EQ(hist[3], 1);  // overflow clamps to the last bucket
  int64_t total = 0;
  for (int64_t h : hist) total += h;
  EXPECT_EQ(total, 3);
}

TEST(TripGeneratorTest, RejectsBadInputs) {
  Rng rng(104);
  auto g = RoadNetwork::Build(1, {});
  ASSERT_TRUE(g.ok());
  TripGenOptions opt;
  EXPECT_FALSE(GenerateTrips(*g, opt, &rng).ok());
}

TEST(PoissonModelTest, FitMatchesEq11) {
  // 3 trips from node 0, 1 trip from node 2, in a 100-second frame.
  TripRecords records = {
      {0, 1, 10, 50}, {0, 2, 20, 60}, {0, 1, 30, 70}, {2, 1, 40, 80},
      {1, 0, 500, 10},  // outside the frame
  };
  auto model = PoissonDemandModel::Fit(records, 3, 0, 100);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->num_observed(), 4);
  EXPECT_DOUBLE_EQ(model->Lambda(0), 0.03);  // 3 / 100
  EXPECT_DOUBLE_EQ(model->Lambda(1), 0.0);
  EXPECT_DOUBLE_EQ(model->Lambda(2), 0.01);
}

TEST(PoissonModelTest, AverageDuration) {
  TripRecords records = {{0, 1, 0, 50}, {0, 1, 1, 70}, {0, 2, 2, 10}};
  auto model = PoissonDemandModel::Fit(records, 3, 0, 100);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->AverageDuration(0, 1), 60);
  EXPECT_DOUBLE_EQ(model->AverageDuration(0, 2), 10);
  EXPECT_LT(model->AverageDuration(1, 2), 0);  // unobserved
}

TEST(PoissonModelTest, TransitionsFollowEq12) {
  // From node 0: 3x to node 1, 1x to node 2 -> p = 0.75 / 0.25.
  TripRecords records = {
      {0, 1, 0, 1}, {0, 1, 1, 1}, {0, 1, 2, 1}, {0, 2, 3, 1}};
  auto model = PoissonDemandModel::Fit(records, 3, 0, 100);
  ASSERT_TRUE(model.ok());
  Rng rng(105);
  int to_1 = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    to_1 += (model->SampleDestination(0, &rng) == 1);
  }
  EXPECT_NEAR(to_1 / static_cast<double>(trials), 0.75, 0.02);
}

TEST(PoissonModelTest, SampleTripRespectsOriginWeights) {
  TripRecords records = {
      {0, 1, 0, 1}, {0, 1, 1, 1}, {0, 1, 2, 1}, {2, 1, 3, 1}};
  auto model = PoissonDemandModel::Fit(records, 3, 0, 100);
  ASSERT_TRUE(model.ok());
  Rng rng(106);
  int from_0 = 0;
  for (int i = 0; i < 20000; ++i) {
    from_0 += (model->SampleTrip(&rng).first == 0);
  }
  EXPECT_NEAR(from_0 / 20000.0, 0.75, 0.02);
}

TEST(PoissonModelTest, RejectsEmptyFrame) {
  TripRecords records = {{0, 1, 500, 1}};
  EXPECT_FALSE(PoissonDemandModel::Fit(records, 2, 0, 100).ok());
  EXPECT_FALSE(PoissonDemandModel::Fit(records, 2, 0, 0).ok());
}

class InstanceBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(107);
    auto g = City(rng_.get());
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
    auto social = SocialGraph::Build(10, {{0, 1}, {1, 2}});
    ASSERT_TRUE(social.ok());
    social_ = std::make_unique<SocialGraph>(*std::move(social));
    auto checkins = CheckInMap::Generate(*network_, 10, 2, rng_.get());
    ASSERT_TRUE(checkins.ok());
    checkins_ = std::make_unique<CheckInMap>(*std::move(checkins));
    TripGenOptions topt;
    topt.num_trips = 500;
    auto records = GenerateTrips(*network_, topt, rng_.get());
    ASSERT_TRUE(records.ok());
    records_ = *std::move(records);
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<SocialGraph> social_;
  std::unique_ptr<CheckInMap> checkins_;
  TripRecords records_;
};

TEST_F(InstanceBuilderTest, BuildFromRecordsHonorsOptions) {
  InstanceBuilder builder(network_.get(), social_.get(), checkins_.get(),
                          oracle_.get());
  InstanceOptions opt;
  opt.num_riders = 60;
  opt.num_vehicles = 10;
  opt.capacity = 4;
  opt.epsilon = 1.5;
  auto instance = builder.BuildFromRecords(records_, opt, rng_.get());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_riders(), 60);
  EXPECT_EQ(instance->num_vehicles(), 10);
  for (const Vehicle& v : instance->vehicles) EXPECT_EQ(v.capacity, 4);
  for (const Rider& r : instance->riders) {
    EXPECT_GE(r.pickup_deadline, opt.pickup_deadline_min);
    EXPECT_LE(r.pickup_deadline, opt.pickup_deadline_max);
    const Cost direct = oracle_->Distance(r.source, r.destination);
    EXPECT_NEAR(r.dropoff_deadline, r.pickup_deadline + 1.5 * direct, 1e-6);
    EXPECT_GE(r.user, 0);  // mapped to a check-in user
  }
}

TEST_F(InstanceBuilderTest, VehicleUtilityMatrixInRange) {
  InstanceBuilder builder(network_.get(), social_.get(), checkins_.get(),
                          oracle_.get());
  InstanceOptions opt;
  opt.num_riders = 20;
  opt.num_vehicles = 5;
  auto instance = builder.BuildFromRecords(records_, opt, rng_.get());
  ASSERT_TRUE(instance.ok());
  ASSERT_EQ(instance->vehicle_utility.size(), 100u);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 5; ++j) {
      const double mu = instance->VehicleUtility(i, j);
      EXPECT_GE(mu, 0.0);
      EXPECT_LE(mu, 1.0);
    }
  }
}

TEST_F(InstanceBuilderTest, BuildFromModelProducesRoutableRiders) {
  InstanceBuilder builder(network_.get(), social_.get(), checkins_.get(),
                          oracle_.get());
  auto model = PoissonDemandModel::Fit(records_, network_->num_nodes(), 0,
                                       1800);
  ASSERT_TRUE(model.ok());
  InstanceOptions opt;
  opt.num_riders = 80;
  opt.num_vehicles = 15;
  auto instance = builder.BuildFromModel(*model, opt, rng_.get());
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->num_riders(), 80);
  for (const Rider& r : instance->riders) {
    EXPECT_NE(r.source, r.destination);
    EXPECT_LT(oracle_->Distance(r.source, r.destination), kInfiniteCost);
  }
}

TEST_F(InstanceBuilderTest, RejectsBadOptions) {
  InstanceBuilder builder(network_.get(), social_.get(), checkins_.get(),
                          oracle_.get());
  InstanceOptions opt;
  opt.num_riders = 10;
  opt.num_vehicles = 2;
  opt.epsilon = 0.5;  // < 1 impossible
  EXPECT_FALSE(builder.BuildFromRecords(records_, opt, rng_.get()).ok());
  opt.epsilon = 1.5;
  opt.pickup_deadline_min = 100;
  opt.pickup_deadline_max = 50;
  EXPECT_FALSE(builder.BuildFromRecords(records_, opt, rng_.get()).ok());
}

TEST_F(InstanceBuilderTest, RejectsTooFewRecords) {
  InstanceBuilder builder(network_.get(), social_.get(), checkins_.get(),
                          oracle_.get());
  InstanceOptions opt;
  opt.num_riders = 10000;
  EXPECT_FALSE(builder.BuildFromRecords(records_, opt, rng_.get()).ok());
}

TEST_F(InstanceBuilderTest, NullCheckinsMeansNoSocialIdentity) {
  InstanceBuilder builder(network_.get(), social_.get(), nullptr,
                          oracle_.get());
  InstanceOptions opt;
  opt.num_riders = 10;
  opt.num_vehicles = 2;
  auto instance = builder.BuildFromRecords(records_, opt, rng_.get());
  ASSERT_TRUE(instance.ok());
  for (const Rider& r : instance->riders) EXPECT_EQ(r.user, -1);
  EXPECT_DOUBLE_EQ(instance->Similarity(0, 1), 0.0);
}

}  // namespace
}  // namespace urr

// Cross-module integration sweeps: build complete worlds across the
// Table-3 parameter grid and assert the invariants every approach must
// satisfy, plus the qualitative relationships the paper reports.
#include <gtest/gtest.h>

#include "exp/harness.h"

namespace urr {
namespace {

struct GridParam {
  CityKind city;
  double alpha;
  double beta;
  int capacity;
  double epsilon;
  uint64_t seed;
};

std::string ParamName(const ::testing::TestParamInfo<GridParam>& info) {
  const GridParam& p = info.param;
  std::string name = p.city == CityKind::kNycLike ? "Nyc" : "Chi";
  name += 'a';
  name += std::to_string(static_cast<int>(p.alpha * 100));
  name += 'b';
  name += std::to_string(static_cast<int>(p.beta * 100));
  name += 'c';
  name += std::to_string(p.capacity);
  name += 'e';
  name += std::to_string(static_cast<int>(p.epsilon * 10));
  name += 's';
  name += std::to_string(p.seed);
  return name;
}

class WorldGridTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(WorldGridTest, EveryApproachProducesValidConsistentSolutions) {
  const GridParam& p = GetParam();
  ExperimentConfig cfg;
  cfg.city = p.city;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 800;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 90;
  cfg.num_vehicles = 18;
  cfg.alpha = p.alpha;
  cfg.beta = p.beta;
  cfg.capacity = p.capacity;
  cfg.epsilon = p.epsilon;
  cfg.seed = p.seed;
  cfg.gbs.k = 3;
  cfg.gbs.d_max = 250;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok()) << world.status();

  double best_utility = -1, worst_utility = 1e300;
  for (Approach a : AllApproaches()) {
    auto res = RunApproach(world->get(), a);
    ASSERT_TRUE(res.ok()) << ApproachName(a) << ": " << res.status();
    // RunApproach validated the solution; check reported metrics are sane.
    EXPECT_GE(res->utility, 0) << ApproachName(a);
    EXPECT_LE(res->utility, (*world)->instance.num_riders()) << ApproachName(a);
    EXPECT_GE(res->travel_cost, 0);
    EXPECT_GE(res->assigned, 0);
    best_utility = std::max(best_utility, res->utility);
    worst_utility = std::min(worst_utility, res->utility);
  }
  // The approaches must all be in one ballpark (no broken solver returning
  // near-zero while others serve the workload).
  if (best_utility > 1.0) {
    EXPECT_GT(worst_utility, best_utility * 0.4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WorldGridTest,
    ::testing::Values(
        GridParam{CityKind::kNycLike, 0.33, 0.33, 3, 1.5, 1},
        GridParam{CityKind::kNycLike, 0.0, 0.0, 2, 1.2, 2},
        GridParam{CityKind::kNycLike, 1.0, 0.0, 4, 2.0, 3},
        GridParam{CityKind::kNycLike, 0.0, 1.0, 5, 1.7, 4},
        GridParam{CityKind::kChicagoLike, 0.33, 0.33, 3, 1.5, 5},
        GridParam{CityKind::kChicagoLike, 0.5, 0.5, 2, 1.2, 6}),
    ParamName);

TEST(IntegrationTest, LooserDeadlinesServeMoreRiders) {
  // The Fig-8 monotonicity: widening pickup deadlines can only help.
  ExperimentConfig tight;
  tight.city_nodes = 1500;
  tight.num_social_users = 800;
  tight.num_trip_records = 1500;
  tight.num_riders = 120;
  tight.num_vehicles = 20;
  tight.rt_min_minutes = 1;
  tight.rt_max_minutes = 5;
  ExperimentConfig loose = tight;
  loose.rt_min_minutes = 20;
  loose.rt_max_minutes = 45;
  auto tw = BuildWorld(tight);
  auto lw = BuildWorld(loose);
  ASSERT_TRUE(tw.ok() && lw.ok());
  auto tr = RunApproach(tw->get(), Approach::kEfficientGreedy);
  auto lr = RunApproach(lw->get(), Approach::kEfficientGreedy);
  ASSERT_TRUE(tr.ok() && lr.ok());
  EXPECT_GT(lr->assigned, tr->assigned);
  EXPECT_GT(lr->utility, tr->utility);
}

TEST(IntegrationTest, MoreVehiclesNeverHurt) {
  ExperimentConfig few;
  few.city_nodes = 1500;
  few.num_social_users = 800;
  few.num_trip_records = 1500;
  few.num_riders = 120;
  few.num_vehicles = 6;
  ExperimentConfig many = few;
  many.num_vehicles = 30;
  auto fw = BuildWorld(few);
  auto mw = BuildWorld(many);
  ASSERT_TRUE(fw.ok() && mw.ok());
  auto fr = RunApproach(fw->get(), Approach::kEfficientGreedy);
  auto mr = RunApproach(mw->get(), Approach::kEfficientGreedy);
  ASSERT_TRUE(fr.ok() && mr.ok());
  EXPECT_GE(mr->assigned, fr->assigned);
  EXPECT_GT(mr->utility, fr->utility * 0.95);
}

TEST(IntegrationTest, PureTrajectoryUtilityAlignsEgWithCf) {
  // The Fig-10 observation at (alpha, beta) = (0, 0): EG's efficiency and
  // CF's cost key pick similar pairs, so their utilities come out close.
  ExperimentConfig cfg;
  cfg.city_nodes = 1500;
  cfg.num_social_users = 800;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 120;
  cfg.num_vehicles = 24;
  cfg.alpha = 0;
  cfg.beta = 0;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  auto eg = RunApproach(world->get(), Approach::kEfficientGreedy);
  auto cf = RunApproach(world->get(), Approach::kCostFirst);
  ASSERT_TRUE(eg.ok() && cf.ok());
  EXPECT_NEAR(eg->utility, cf->utility,
              0.15 * std::max(eg->utility, cf->utility));
}

}  // namespace
}  // namespace urr

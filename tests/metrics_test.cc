#include "urr/metrics.h"

#include <gtest/gtest.h>

#include "exp/harness.h"
#include "urr/bilateral.h"
#include "urr/cost_first.h"
#include "urr/greedy.h"

namespace urr {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Edge> edges;
    for (NodeId v = 0; v + 1 < 6; ++v) {
      edges.push_back({v, v + 1, 10});
      edges.push_back({v + 1, v, 10});
    }
    auto g = RoadNetwork::Build(6, edges);
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
    instance_.network = network_.get();
    instance_.riders = {{0, 2, 1e5, 1e6, -1}, {1, 3, 1e5, 1e6, -1},
                        {4, 5, 1e5, 1e6, -1}};
    instance_.vehicles = {{0, 2}, {5, 2}};
    model_ = std::make_unique<UtilityModel>(&instance_, UtilityParams{0, 0});
  }
  UrrInstance instance_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<UtilityModel> model_;
};

TEST_F(MetricsTest, EmptySolution) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  SolutionMetrics m = ComputeMetrics(instance_, *model_, sol);
  EXPECT_EQ(m.riders_served, 0);
  EXPECT_EQ(m.riders_total, 3);
  EXPECT_DOUBLE_EQ(m.service_rate, 0);
  EXPECT_DOUBLE_EQ(m.total_utility, 0);
  EXPECT_DOUBLE_EQ(m.mean_detour_sigma, 1.0);
  EXPECT_EQ(m.active_vehicles, 0);
}

TEST_F(MetricsTest, SharedRideMetrics) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  // Vehicle 0 serves riders 0 (0->2) and 1 (1->3), overlapping on leg 1-2.
  TransferSequence& seq = sol.schedules[0];
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {1, 1, StopType::kPickup, 1e5});
  seq.InsertStop(2, {2, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {3, 1, StopType::kDropoff, 1e6});
  sol.assignment[0] = 0;
  sol.assignment[1] = 0;
  ASSERT_TRUE(sol.Validate(instance_).ok());

  SolutionMetrics m = ComputeMetrics(instance_, *model_, sol);
  EXPECT_EQ(m.riders_served, 2);
  EXPECT_NEAR(m.service_rate, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(m.active_vehicles, 1);
  EXPECT_EQ(m.max_onboard, 2);
  // Both riders ride their exact shortest paths: sigma = 1.
  EXPECT_NEAR(m.mean_detour_sigma, 1.0, 1e-9);
  // Both riders share the 1->2 leg.
  EXPECT_DOUBLE_EQ(m.shared_rider_fraction, 1.0);
  EXPECT_DOUBLE_EQ(m.mean_riders_per_active_vehicle, 2.0);
  EXPECT_DOUBLE_EQ(m.total_travel_cost, 30);
  // Occupancy weighted by leg cost: legs 10,10,10 with onboard 0,2,1... wait
  // legs: 0->0(cost 0, onboard n/a), 0->1 (10, 1), 1->2 (10, 2), 2->3 (10,1).
  EXPECT_NEAR(m.mean_onboard, (0 * 0 + 10 * 1 + 10 * 2 + 10 * 1) / 30.0, 1e-9);
}

TEST_F(MetricsTest, FormatMentionsKeyNumbers) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  const std::string text = FormatMetrics(ComputeMetrics(instance_, *model_, sol));
  EXPECT_NE(text.find("riders served: 0/3"), std::string::npos);
  EXPECT_NE(text.find("overall utility"), std::string::npos);
}

TEST_F(MetricsTest, JsonCarriesEveryField) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  TransferSequence& seq = sol.schedules[0];
  seq.InsertStop(0, {0, 0, StopType::kPickup, 1e5});
  seq.InsertStop(1, {2, 0, StopType::kDropoff, 1e6});
  sol.assignment[0] = 0;
  const std::string json = MetricsJson(ComputeMetrics(instance_, *model_, sol));
  for (const char* key :
       {"\"riders_total\":3", "\"riders_served\":1", "\"service_rate\"",
        "\"total_utility\"", "\"mean_utility_served\"", "\"total_travel_cost\"",
        "\"mean_detour_sigma\"", "\"shared_rider_fraction\"",
        "\"mean_onboard\"", "\"max_onboard\"", "\"active_vehicles\":1",
        "\"mean_riders_per_active_vehicle\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(MetricsTest, UpperBoundDominatesEverySolver) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 600;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  ExperimentWorld& w = **world;
  SolverContext ctx = w.Context();
  const double bound =
      UpperBoundUtility(w.instance, w.model, ctx.vehicle_index);
  EXPECT_GT(bound, 0);
  for (auto* solve :
       {+[](const UrrInstance& i, SolverContext* c) { return SolveCostFirst(i, c); },
        +[](const UrrInstance& i, SolverContext* c) { return SolveEfficientGreedy(i, c); },
        +[](const UrrInstance& i, SolverContext* c) { return SolveBilateral(i, c); }}) {
    UrrSolution sol = solve(w.instance, &ctx);
    EXPECT_LE(sol.TotalUtility(w.model), bound + 1e-6);
  }
}

TEST_F(MetricsTest, UpperBoundCountsOnlyReachableRiders) {
  VehicleIndex index(*network_, {0, 5});
  // Make rider 2 unreachable.
  instance_.riders[2].pickup_deadline = 0.0001;
  UtilityModel model(&instance_, UtilityParams{0, 0});
  const double bound = UpperBoundUtility(instance_, model, &index);
  // Riders 0 and 1 contribute exactly 1.0 each under (0,0).
  EXPECT_NEAR(bound, 2.0, 1e-9);
}

}  // namespace
}  // namespace urr

#include "sched/route.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "routing/distance_oracle.h"
#include "sched/insertion.h"

namespace urr {
namespace {

class RouteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(61);
    GridCityOptions opt;
    opt.width = 12;
    opt.height = 12;
    auto g = GenerateGridCity(opt, &rng);
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    auto ch = ContractionHierarchy::Build(*network_);
    ASSERT_TRUE(ch.ok());
    ch_ = std::make_unique<ContractionHierarchy>(*std::move(ch));
    query_ = std::make_unique<ChQuery>(*ch_);
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
    rng_ = std::make_unique<Rng>(62);
  }

  NodeId RandomNode() {
    return static_cast<NodeId>(rng_->UniformInt(0, network_->num_nodes() - 1));
  }

  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<ChQuery> query_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<Rng> rng_;
};

TEST_F(RouteTest, EmptyScheduleHasTrivialRoute) {
  TransferSequence seq(5, 0, 2, oracle_.get());
  auto route = ExpandScheduleRoute(seq, query_.get());
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->nodes, (std::vector<NodeId>{5}));
  EXPECT_TRUE(route->stop_offsets.empty());
  EXPECT_DOUBLE_EQ(route->total_cost, 0);
}

TEST_F(RouteTest, ExpandedRouteWalksOriginalEdgesAndMatchesCost) {
  TransferSequence seq(RandomNode(), 0, 3, oracle_.get());
  for (int r = 0; r < 3; ++r) {
    RiderTrip trip{r, RandomNode(), RandomNode(), 1e7, 1e8};
    if (trip.source == trip.destination) continue;
    ASSERT_TRUE(ArrangeSingleRider(&seq, trip).ok());
  }
  ASSERT_GT(seq.num_stops(), 0);
  auto route = ExpandScheduleRoute(seq, query_.get());
  ASSERT_TRUE(route.ok()) << route.status();
  // Every consecutive pair is an original edge.
  Cost walked = 0;
  for (size_t i = 0; i + 1 < route->nodes.size(); ++i) {
    const Cost leg = network_->EdgeCost(route->nodes[i], route->nodes[i + 1]);
    ASSERT_LT(leg, kInfiniteCost)
        << route->nodes[i] << " -> " << route->nodes[i + 1];
    walked += leg;
  }
  EXPECT_NEAR(walked, seq.TotalCost(), 1e-6);
  EXPECT_NEAR(route->total_cost, seq.TotalCost(), 1e-6);
  // Stop offsets point at the stop locations, in order.
  ASSERT_EQ(route->stop_offsets.size(), static_cast<size_t>(seq.num_stops()));
  for (int u = 0; u < seq.num_stops(); ++u) {
    EXPECT_EQ(route->nodes[static_cast<size_t>(route->stop_offsets[
                  static_cast<size_t>(u)])],
              seq.stop(u).location);
  }
  // Offsets are non-decreasing.
  for (size_t u = 1; u < route->stop_offsets.size(); ++u) {
    EXPECT_LE(route->stop_offsets[u - 1], route->stop_offsets[u]);
  }
}

TEST_F(RouteTest, ZeroLengthLegCollapses) {
  TransferSequence seq(7, 0, 2, oracle_.get());
  seq.InsertStop(0, {7, 0, StopType::kPickup, 1e6});  // pickup at the start
  seq.InsertStop(1, {7, 0, StopType::kDropoff, 1e7});
  auto route = ExpandScheduleRoute(seq, query_.get());
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->nodes, (std::vector<NodeId>{7}));
  EXPECT_EQ(route->stop_offsets, (std::vector<int>{0, 0}));
  EXPECT_DOUBLE_EQ(route->total_cost, 0);
}

}  // namespace
}  // namespace urr

#include "graph/road_network.h"

#include <gtest/gtest.h>

namespace urr {
namespace {

RoadNetwork Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3, plus 3 -> 0 back edge.
  auto g = RoadNetwork::Build(4,
                              {{0, 1, 1.0},
                               {1, 3, 2.0},
                               {0, 2, 2.5},
                               {2, 3, 1.0},
                               {3, 0, 10.0}},
                              {{0, 0}, {1, 1}, {1, -1}, {2, 0}});
  return *std::move(g);
}

TEST(RoadNetworkTest, BuildBasicCounts) {
  RoadNetwork g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4);
  EXPECT_EQ(g.num_edges(), 5);
  EXPECT_TRUE(g.has_coords());
}

TEST(RoadNetworkTest, OutNeighborsMatch) {
  RoadNetwork g = Diamond();
  auto heads = g.OutNeighbors(0);
  auto costs = g.OutCosts(0);
  ASSERT_EQ(heads.size(), 2u);
  ASSERT_EQ(costs.size(), 2u);
  // CSR preserves insertion order per tail.
  EXPECT_EQ(heads[0], 1);
  EXPECT_DOUBLE_EQ(costs[0], 1.0);
  EXPECT_EQ(heads[1], 2);
  EXPECT_EQ(g.OutDegree(0), 2);
  EXPECT_EQ(g.OutDegree(3), 1);
}

TEST(RoadNetworkTest, InNeighborsAreReversed) {
  RoadNetwork g = Diamond();
  auto in = g.InNeighbors(3);
  ASSERT_EQ(in.size(), 2u);
  // Tails of edges into 3 are 1 and 2 (order by edge list).
  EXPECT_TRUE((in[0] == 1 && in[1] == 2) || (in[0] == 2 && in[1] == 1));
}

TEST(RoadNetworkTest, EdgeCostPicksMinimumParallel) {
  auto g = RoadNetwork::Build(2, {{0, 1, 5.0}, {0, 1, 3.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->EdgeCost(0, 1), 3.0);
  EXPECT_EQ(g->EdgeCost(1, 0), kInfiniteCost);
}

TEST(RoadNetworkTest, EdgeListRoundTrips) {
  RoadNetwork g = Diamond();
  auto edges = g.EdgeList();
  EXPECT_EQ(edges.size(), 5u);
  auto g2 = RoadNetwork::Build(4, edges);
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->num_edges(), 5);
  EXPECT_DOUBLE_EQ(g2->EdgeCost(0, 1), 1.0);
}

TEST(RoadNetworkTest, RejectsOutOfRangeEndpoint) {
  EXPECT_FALSE(RoadNetwork::Build(2, {{0, 2, 1.0}}).ok());
  EXPECT_FALSE(RoadNetwork::Build(2, {{-1, 1, 1.0}}).ok());
}

TEST(RoadNetworkTest, RejectsBadCost) {
  EXPECT_FALSE(RoadNetwork::Build(2, {{0, 1, -1.0}}).ok());
  EXPECT_FALSE(RoadNetwork::Build(2, {{0, 1, kInfiniteCost}}).ok());
}

TEST(RoadNetworkTest, RejectsCoordSizeMismatch) {
  EXPECT_FALSE(RoadNetwork::Build(2, {{0, 1, 1.0}}, {{0, 0}}).ok());
}

TEST(RoadNetworkTest, EmptyNetworkIsValid) {
  auto g = RoadNetwork::Build(0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0);
  RoadNetwork def;
  EXPECT_EQ(def.num_nodes(), 0);
}

TEST(RoadNetworkTest, EuclideanLowerBound) {
  RoadNetwork g = Diamond();
  EXPECT_DOUBLE_EQ(g.EuclideanLowerBound(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
}

TEST(RoadNetworkTest, LargestWeaklyConnectedComponent) {
  // Two components: {0,1,2} connected, {3,4} connected.
  auto g = RoadNetwork::Build(
      5, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}});
  ASSERT_TRUE(g.ok());
  auto lwcc = g->LargestWeaklyConnectedComponent();
  EXPECT_EQ(lwcc.size(), 3u);
  EXPECT_EQ(lwcc, (std::vector<NodeId>{0, 1, 2}));
}

TEST(RoadNetworkTest, WeakConnectivityIgnoresDirection) {
  // 0 -> 1 <- 2: weakly connected despite no directed path 0 -> 2.
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {2, 1, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->LargestWeaklyConnectedComponent().size(), 3u);
}

TEST(RoadNetworkTest, MaxSpeedBoundsEdges) {
  RoadNetwork g = Diamond();
  const double speed = g.MaxSpeed();
  // For every edge, euclid/cost <= MaxSpeed.
  for (const Edge& e : g.EdgeList()) {
    if (e.cost == 0) continue;
    const double d = EuclideanDistance(g.coord(e.from), g.coord(e.to));
    EXPECT_LE(d / e.cost, speed + 1e-12);
  }
}

}  // namespace
}  // namespace urr

// Socket-level battery for the dispatch server: request lifecycle over
// real connections, the batch-vs-server log differential, protocol
// robustness (truncated frames, oversized lengths, invalid JSON,
// mid-request disconnects), concurrent clients and admission control.
// Every scenario must end in a precise error response or a clean close —
// never a crash; the sanitizer CI jobs run this binary under ASan/TSan.
#include "server/server.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/harness.h"
#include "server/loadgen.h"

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  cfg.seed = seed;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

/// A fully wired world + service + socket server on an ephemeral port.
struct ServerHarness {
  explicit ServerHarness(const EngineConfig& engine_config,
                         double cancel_fraction = 0.0, int max_sessions = 8,
                         ServiceConfig service_config = {})
      : world(SmallWorld()),
        workload([&] {
          Rng rng(world->config.seed + 100);
          StreamingWorkloadOptions opt;
          opt.arrival_rate = 1.0;
          opt.cancel_fraction = cancel_fraction;
          return MakeStreamingWorkload(world->instance, opt, &rng);
        }()),
        model(&workload.instance,
              UtilityParams{world->config.alpha, world->config.beta}),
        ctx(world->Context()),
        admission(max_sessions),
        service((ctx.model = &model, &workload), &ctx, engine_config,
                service_config, &admission),
        server(&service, &admission, ServerConfig{}) {
    EXPECT_TRUE(service.Start().ok());
    EXPECT_TRUE(server.Start().ok());
    EXPECT_GT(server.port(), 0);
  }
  ~ServerHarness() { EXPECT_TRUE(server.Stop().ok()); }

  Endpoint endpoint() const { return Endpoint{server.port(), ""}; }
  Result<ClientConnection> Connect() {
    return ClientConnection::Connect(endpoint());
  }

  std::unique_ptr<ExperimentWorld> world;
  StreamingWorkload workload;
  UtilityModel model;
  SolverContext ctx;
  AdmissionController admission;
  DispatchService service;
  DispatchServer server;
};

EngineConfig WindowedConfig(Cost window = 20) {
  EngineConfig config;
  config.window = window;
  return config;
}

/// Fresh per-test scratch directory (journal + checkpoint home).
std::string ScratchDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "urr_server_" + tag + "_" +
                    std::to_string(::getpid());
  std::string cmd = "rm -rf " + dir;
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0) << dir;
  return dir;
}

/// Full-precision double literal (std::to_string truncates to 6 decimals,
/// which would silently rewind the virtual clock).
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

TEST(ServerTest, RequestLifecycleOverTcp) {
  ServerHarness h(WindowedConfig());
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok()) << conn.status();

  const RiderId rider = h.workload.arrivals[0].rider;
  const Cost t0 = h.workload.arrivals[0].time;
  auto submit = conn->Call("{\"op\":\"submit_rider\",\"id\":1,\"rider\":" +
                           std::to_string(rider) + ",\"time\":" + Num(t0) +
                           "}");
  ASSERT_TRUE(submit.ok()) << submit.status();
  EXPECT_EQ(submit->GetInt("id", -2), 1);
  EXPECT_EQ(submit->GetInt("code", 0), 200);
  EXPECT_EQ(submit->GetString("result", ""), "queued");

  auto query = conn->Call("{\"op\":\"query_status\",\"rider\":" +
                          std::to_string(rider) + "}");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->GetInt("code", 0), 200);
  EXPECT_EQ(query->GetString("state", ""), "queued");

  auto tick = conn->Call("{\"op\":\"tick\",\"time\":" + Num(t0 + 100) + "}");
  ASSERT_TRUE(tick.ok());
  EXPECT_EQ(tick->GetInt("code", 0), 200);

  auto metrics = conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->GetInt("code", 0), 200);
  EXPECT_GE(metrics->GetNumber("now", -1), t0 + 100);
  const JsonValue* inner = metrics->Find("metrics");
  ASSERT_NE(inner, nullptr) << "metrics envelope must embed EngineMetricsJson";
  EXPECT_GE(inner->GetInt("total_arrivals", -1), 1);
  ASSERT_NE(metrics->Find("sessions"), nullptr);
  EXPECT_GE(metrics->Find("sessions")->GetInt("active", 0), 1);

  auto shutdown = conn->Call("{\"op\":\"shutdown\"}");
  ASSERT_TRUE(shutdown.ok());
  EXPECT_EQ(shutdown->GetString("result", ""), "shutting_down");
  h.server.Wait();
  ASSERT_TRUE(h.server.Stop().ok());  // drains sessions + closes the engine
  EXPECT_TRUE(h.service.engine().finished());
}

TEST(ServerTest, ReplayThroughSocketMatchesBatchLog) {
  EngineConfig config = WindowedConfig(15);
  // Batch reference on an identical world + workload.
  std::string batch_log;
  {
    auto world = SmallWorld();
    Rng rng(world->config.seed + 100);
    StreamingWorkloadOptions opt;
    opt.arrival_rate = 1.0;
    opt.cancel_fraction = 0.2;
    StreamingWorkload workload =
        MakeStreamingWorkload(world->instance, opt, &rng);
    UtilityModel model(&workload.instance,
                       UtilityParams{world->config.alpha, world->config.beta});
    SolverContext ctx = world->Context();
    ctx.model = &model;
    DispatchEngine engine(&workload, &ctx, config);
    ASSERT_TRUE(engine.Run().ok());
    batch_log = engine.SerializedLog();
  }

  ServerHarness h(config, /*cancel_fraction=*/0.2);
  auto report = RunReplay(h.endpoint(), /*shutdown_after=*/true);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 0);
  // `sent` counts rider submissions; cancels ride along untallied.
  EXPECT_EQ(report->sent, static_cast<int64_t>(h.workload.arrivals.size()));
  h.server.Wait();
  ASSERT_TRUE(h.server.Stop().ok());
  EXPECT_EQ(h.service.SerializedLog(), batch_log)
      << "serving the recorded workload over the socket must reproduce the "
         "batch event log byte for byte";
}

TEST(ServerTest, IdempotentReqIdRetriesGetTheCachedResponse) {
  // No journal configured: dedup must work standalone, because the lookup
  // precedes the journal stage in HandleMutating.
  ServerHarness h(WindowedConfig());
  const RiderId rider = h.workload.arrivals[0].rider;
  const std::string submit = "{\"op\":\"submit_rider\",\"id\":3,\"req_id\":7,"
                             "\"rider\":" + std::to_string(rider) +
                             ",\"time\":" +
                             Num(h.workload.arrivals[0].time) + "}";

  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok()) << conn.status();
  ASSERT_TRUE(conn->Send(submit).ok());
  auto first = conn->Recv();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(ParseJson(*first)->GetBool("ok", false)) << *first;

  // Retry on the same connection: byte-identical cached response.
  ASSERT_TRUE(conn->Send(submit).ok());
  auto again = conn->Recv();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *first);

  // The ambiguous-failure shape: the client never reads the response,
  // drops the connection and retries from a fresh one. Still the cached
  // bytes, still exactly one execution.
  conn->Close();
  auto retry_conn = h.Connect();
  ASSERT_TRUE(retry_conn.ok());
  ASSERT_TRUE(retry_conn->Send(submit).ok());
  auto after_reconnect = retry_conn->Recv();
  ASSERT_TRUE(after_reconnect.ok());
  EXPECT_EQ(*after_reconnect, *first);

  EXPECT_EQ(h.service.dedup_hits(), 2);
  auto metrics = retry_conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->Find("metrics")->GetInt("total_arrivals", -1), 1)
      << "a deduplicated retry must not reach the engine";

  // A different req_id is a different request: the duplicate submission
  // now reaches dispatch and earns its 409.
  auto fresh = retry_conn->Call("{\"op\":\"submit_rider\",\"req_id\":8,"
                                "\"rider\":" + std::to_string(rider) +
                                ",\"time\":" +
                                Num(h.workload.arrivals[0].time + 1) + "}");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->GetInt("code", 0), 409);
}

TEST(ServerTest, RecoveredServerReproducesTheBatchLogByteForByte) {
  EngineConfig config = WindowedConfig(15);
  // Batch reference on an identical world + workload.
  std::string batch_log;
  std::string batch_fp;
  {
    auto world = SmallWorld();
    Rng rng(world->config.seed + 100);
    StreamingWorkloadOptions opt;
    opt.arrival_rate = 1.0;
    opt.cancel_fraction = 0.2;
    StreamingWorkload workload =
        MakeStreamingWorkload(world->instance, opt, &rng);
    UtilityModel model(&workload.instance,
                       UtilityParams{world->config.alpha, world->config.beta});
    SolverContext ctx = world->Context();
    ctx.model = &model;
    DispatchEngine engine(&workload, &ctx, config);
    ASSERT_TRUE(engine.Run().ok());
    batch_log = engine.SerializedLog();
    batch_fp = engine.SolutionFingerprint();
  }

  const std::string dir = ScratchDir("recover");
  ServiceConfig journaled;
  journaled.journal_dir = dir;
  journaled.checkpoint_every = 13;  // forces checkpoint + suffix replay
  journaled.journal_fsync = false;  // ordering, not durability, is under test

  // Phase 1: replay a prefix against a journaling server, then tear it
  // down without a shutdown. Because every mutation is journaled before it
  // is applied, the on-disk state after any stop — clean or SIGKILL —
  // is the same journal prefix.
  constexpr int64_t kPrefix = 30;
  {
    ServerHarness h(config, /*cancel_fraction=*/0.2, /*max_sessions=*/8,
                    journaled);
    auto report = RunReplay(h.endpoint(), /*shutdown_after=*/false, kPrefix);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(report->errors, 0);
    EXPECT_EQ(h.service.journal_records(), kPrefix);
  }

  // Simulate the crash landing mid-append: a torn half-header on the tail.
  {
    std::FILE* f = std::fopen((dir + "/journal.wal").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[5] = {0, 0, 0, 40, 'x'};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), f), sizeof(torn));
    std::fclose(f);
  }

  // Phase 2: recover, then replay the full schedule. The prefix re-sends
  // are absorbed by req_id dedup (entry index = req_id); the suffix runs
  // for the first time. The combined run must equal the batch reference.
  ServiceConfig recovering = journaled;
  recovering.recover = true;
  ServerHarness h(config, /*cancel_fraction=*/0.2, /*max_sessions=*/8,
                  recovering);
  EXPECT_EQ(h.service.journal_records(), kPrefix)
      << "recovery must land on the exact pre-crash mutation count";
  EXPECT_EQ(h.service.recovered_replayed(), kPrefix - 26)
      << "with checkpoints every 13 mutations, only the post-checkpoint "
         "suffix should replay";
  auto report = RunReplay(h.endpoint(), /*shutdown_after=*/true);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 0);
  h.server.Wait();
  ASSERT_TRUE(h.server.Stop().ok());
  EXPECT_GE(h.service.dedup_hits(), kPrefix)
      << "the re-sent prefix must be deduplicated, not re-executed";
  EXPECT_EQ(h.service.SerializedLog(), batch_log)
      << "checkpoint + journal-suffix recovery must reproduce the batch "
         "event log byte for byte";
  EXPECT_EQ(h.service.engine().SolutionFingerprint(), batch_fp);
}

TEST(ServerTest, MalformedRequestsGetPreciseErrors) {
  ServerHarness h(WindowedConfig());
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());

  auto bad_json = conn->Call("{not json");
  ASSERT_TRUE(bad_json.ok()) << bad_json.status();
  EXPECT_EQ(bad_json->GetInt("code", 0), 400);
  EXPECT_FALSE(bad_json->GetBool("ok", true));

  auto bad_op = conn->Call("{\"op\":\"teleport\"}");
  ASSERT_TRUE(bad_op.ok());
  EXPECT_EQ(bad_op->GetInt("code", 0), 400);

  // Virtual clock: a submit without "time" cannot be ordered.
  auto no_time = conn->Call("{\"op\":\"submit_rider\",\"rider\":0}");
  ASSERT_TRUE(no_time.ok());
  EXPECT_EQ(no_time->GetInt("code", 0), 400);

  auto unknown = conn->Call(
      "{\"op\":\"submit_rider\",\"rider\":999999,\"time\":1}");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->GetInt("code", 0), 404);

  auto missing_query = conn->Call("{\"op\":\"query_status\",\"rider\":-5}");
  ASSERT_TRUE(missing_query.ok());
  EXPECT_EQ(missing_query->GetInt("code", 0), 404);

  const RiderId rider = h.workload.arrivals[0].rider;
  auto first = conn->Call("{\"op\":\"submit_rider\",\"rider\":" +
                          std::to_string(rider) + ",\"time\":5}");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->GetInt("code", 0), 200);
  auto duplicate = conn->Call("{\"op\":\"submit_rider\",\"rider\":" +
                              std::to_string(rider) + ",\"time\":6}");
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(duplicate->GetInt("code", 0), 409);

  // The connection survived every error and still serves.
  auto metrics = conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->GetInt("code", 0), 200);
}

TEST(ServerTest, OversizedFrameGets400ThenClose) {
  ServerHarness h(WindowedConfig());
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());
  // A length prefix past the cap, no payload: the server must answer 400
  // and close (it cannot resync past a length it refuses to read).
  const uint32_t n = kMaxFrameBytes + 1;
  std::string prefix;
  prefix.push_back(static_cast<char>((n >> 24) & 0xff));
  prefix.push_back(static_cast<char>((n >> 16) & 0xff));
  prefix.push_back(static_cast<char>((n >> 8) & 0xff));
  prefix.push_back(static_cast<char>(n & 0xff));
  ASSERT_TRUE(conn->SendRaw(prefix).ok());
  auto resp = conn->Recv();
  ASSERT_TRUE(resp.ok()) << resp.status();
  auto parsed = ParseJson(*resp);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->GetInt("code", 0), 400);
  // After the error response the server closes the connection.
  EXPECT_FALSE(conn->Recv().ok());
  // The server itself is unharmed.
  auto again = h.Connect();
  ASSERT_TRUE(again.ok());
  auto metrics = again->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->GetInt("code", 0), 200);
}

TEST(ServerTest, TruncatedFrameAndMidRequestDisconnectAreClean) {
  ServerHarness h(WindowedConfig());
  {
    // Half a length prefix, then gone.
    auto conn = h.Connect();
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE(conn->SendRaw(std::string("\x00\x00", 2)).ok());
    conn->Close();
  }
  {
    // A full prefix promising 100 bytes, then only 10, then gone.
    auto conn = h.Connect();
    ASSERT_TRUE(conn.ok());
    std::string partial;
    partial.append(3, '\0');
    partial.push_back(static_cast<char>(100));
    partial.append("{\"op\":\"me", 9);
    ASSERT_TRUE(conn->SendRaw(partial).ok());
    conn->Close();
  }
  // Both sessions died mid-frame; the server must keep serving.
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());
  auto metrics = conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->GetInt("code", 0), 200);
}

TEST(ServerTest, ClientVanishingWithResponsesPendingDoesNotKillServer) {
  ServerHarness h(WindowedConfig());
  {
    // Pipeline several requests and vanish without reading a byte. The
    // unread responses in the client's receive queue make the close send
    // an RST, so the session's remaining writes hit a dead socket — which
    // must surface as EPIPE in WriteAll, never as a process-killing
    // SIGPIPE.
    auto conn = h.Connect();
    ASSERT_TRUE(conn.ok());
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(conn->Send("{\"op\":\"metrics\"}").ok());
    }
    conn->Close();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // The server survived and still serves.
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());
  auto metrics = conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->GetInt("code", 0), 200);
}

TEST(ServerTest, FinishedSessionThreadsAreReaped) {
  ServerHarness h(WindowedConfig());
  // Churn through short-lived connections; each leaves an exited session
  // thread behind for the listener to reap on a later accept.
  for (int i = 0; i < 20; ++i) {
    auto conn = h.Connect();
    ASSERT_TRUE(conn.ok());
    auto metrics = conn->Call("{\"op\":\"metrics\"}");
    ASSERT_TRUE(metrics.ok());
    conn->Close();
  }
  // Every fresh accept reaps the sessions that finished by then; once the
  // stragglers exit, tracked sessions collapse to the probe connection
  // itself (plus at most the previous probe still winding down).
  bool reaped = false;
  for (int attempt = 0; attempt < 100 && !reaped; ++attempt) {
    auto probe = h.Connect();
    ASSERT_TRUE(probe.ok());
    auto metrics = probe->Call("{\"op\":\"metrics\"}");
    ASSERT_TRUE(metrics.ok());
    reaped = h.server.tracked_sessions() <= 2;
    probe->Close();
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(reaped) << "listener never reaped finished session threads; "
                      << h.server.tracked_sessions() << " still tracked";
}

TEST(ServerTest, StopUnblocksWriteBlockedSession) {
  ServerHarness h(WindowedConfig());
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());
  // Pipeline far more requests than the socket buffers hold without ever
  // reading a response: the session thread ends up blocked in a write to
  // a full send buffer. Stop() must still return — SHUT_RDWR fails that
  // write with EPIPE (SHUT_RD alone would leave the writer blocked and
  // the join hanging forever).
  std::thread flooder([&] {
    for (int i = 0; i < 20000; ++i) {
      if (!conn->Send("{\"op\":\"metrics\"}").ok()) break;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_TRUE(h.server.Stop().ok());
  // The teardown reset the connection, which also unblocks the flooder's
  // own sends.
  flooder.join();
  conn->Close();
}

TEST(ServerTest, AdmissionControlRejectsWithQueueFull) {
  EngineConfig config = WindowedConfig(1000);  // nothing solves mid-test
  config.max_queue = 2;
  ServerHarness h(config);
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());

  int accepted = 0;
  int shed = 0;
  for (int i = 0; i < 6; ++i) {
    auto resp = conn->Call("{\"op\":\"submit_rider\",\"rider\":" +
                           std::to_string(h.workload.arrivals[i].rider) +
                           ",\"time\":" +
                           std::to_string(h.workload.arrivals[5].time) + "}");
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->GetInt("code", 0) == 429) {
      ++shed;
      EXPECT_EQ(resp->GetString("reason", ""), "queue_full");
      EXPECT_EQ(resp->GetInt("queue_depth", -1), 2);
    } else {
      ++accepted;
      EXPECT_EQ(resp->GetInt("code", 0), 200);
    }
  }
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(shed, 4);

  auto metrics = conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->GetInt("shed_queue_full", -1), 4);
  const JsonValue* rejects =
      metrics->Find("metrics")->Find("rejects_by_reason");
  ASSERT_NE(rejects, nullptr);
  EXPECT_EQ(rejects->GetInt("queue_full", -1), 4);
}

TEST(ServerTest, ConcurrentClientsInterleaveSafely) {
  ServerHarness h(WindowedConfig(25), /*cancel_fraction=*/0.0,
                  /*max_sessions=*/8);
  constexpr int kClients = 6;
  const int per_client =
      static_cast<int>(h.workload.arrivals.size()) / kClients;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto conn = h.Connect();
      if (!conn.ok()) {
        ++failures;
        return;
      }
      // All clients share the virtual clock, which only moves forward — so
      // racing sessions all stamp the same instant. Interleaving across
      // sessions must stay safe and every response must be well-formed.
      for (int i = 0; i < per_client; ++i) {
        const auto& a = h.workload.arrivals[c + i * kClients];
        auto resp = conn->Call("{\"op\":\"submit_rider\",\"rider\":" +
                               std::to_string(a.rider) +
                               ",\"time\":1000}");
        if (!resp.ok() || resp->GetInt("code", 0) >= 500) ++failures;
        auto q = conn->Call("{\"op\":\"query_status\",\"rider\":" +
                            std::to_string(a.rider) + "}");
        if (!q.ok() || q->GetInt("code", 0) != 200) ++failures;
        auto m = conn->Call("{\"op\":\"metrics\"}");
        if (!m.ok() || m->GetInt("code", 0) != 200) ++failures;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Everything submitted is accounted for in the engine.
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());
  auto metrics = conn->Call("{\"op\":\"metrics\"}");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->Find("metrics")->GetInt("total_arrivals", -1),
            kClients * per_client);
}

TEST(ServerTest, MutatingRequestsAfterShutdownGet503) {
  ServerHarness h(WindowedConfig());
  auto conn = h.Connect();
  ASSERT_TRUE(conn.ok());
  // Drive the service directly past shutdown (the socket layer stops
  // serving new requests once the flag is set, so exercise the service
  // contract in-process).
  ASSERT_TRUE(
      ParseJson(h.service.Handle("{\"op\":\"shutdown\"}"))->GetBool("ok",
                                                                    false));
  auto resp = ParseJson(h.service.Handle(
      "{\"op\":\"submit_rider\",\"rider\":0,\"time\":1}"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->GetInt("code", 0), 503);
  // Read-only requests still answer.
  auto metrics = ParseJson(h.service.Handle("{\"op\":\"metrics\"}"));
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->GetInt("code", 0), 200);
}

TEST(AdmissionControllerTest, BlocksAtCapacityAndWakesOnRelease) {
  AdmissionController admission(1);
  ASSERT_TRUE(admission.AcquireSession());
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    if (admission.AcquireSession()) {
      acquired.store(true);
      admission.ReleaseSession();
    }
  });
  // The waiter cannot get a slot until the holder releases.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(acquired.load());
  admission.ReleaseSession();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(admission.total_sessions(), 2);
  EXPECT_EQ(admission.peak_sessions(), 1);

  // Close() unblocks pending acquires with `false`.
  ASSERT_TRUE(admission.AcquireSession());
  std::atomic<int> verdict{-1};
  std::thread closer([&] { verdict.store(admission.AcquireSession() ? 1 : 0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  admission.Close();
  closer.join();
  EXPECT_EQ(verdict.load(), 0);
}

}  // namespace
}  // namespace urr

#include "graph/generators.h"

#include <gtest/gtest.h>

#include "routing/dijkstra.h"

namespace urr {
namespace {

TEST(GeneratorsTest, GridCityIsConnectedAndSized) {
  Rng rng(11);
  GridCityOptions opt;
  opt.width = 20;
  opt.height = 15;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_LE(g->num_nodes(), 300);
  EXPECT_GT(g->num_nodes(), 250);  // keep_probability 0.92 loses few nodes
  EXPECT_EQ(g->LargestWeaklyConnectedComponent().size(),
            static_cast<size_t>(g->num_nodes()));
  EXPECT_TRUE(g->has_coords());
}

TEST(GeneratorsTest, GridCityCostsArePositiveAndJittered) {
  Rng rng(12);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  opt.block_cost = 60;
  opt.jitter = 0.3;
  opt.arterial_fraction = 0;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  for (const Edge& e : g->EdgeList()) {
    EXPECT_GE(e.cost, 60 * 0.7 - 1e-9);
    EXPECT_LE(e.cost, 60 * 1.3 + 1e-9);
  }
}

TEST(GeneratorsTest, ArterialsCreateLongEdges) {
  Rng rng(13);
  GridCityOptions opt;
  opt.width = 30;
  opt.height = 30;
  opt.arterial_fraction = 0.05;
  opt.arterial_span = 8;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  bool has_long = false;
  for (const Edge& e : g->EdgeList()) {
    if (e.cost > opt.block_cost * 3) has_long = true;
  }
  EXPECT_TRUE(has_long);
}

TEST(GeneratorsTest, RejectsDegenerateGrid) {
  Rng rng(1);
  GridCityOptions opt;
  opt.width = 1;
  EXPECT_FALSE(GenerateGridCity(opt, &rng).ok());
  opt.width = 10;
  opt.block_cost = 0;
  EXPECT_FALSE(GenerateGridCity(opt, &rng).ok());
  opt.block_cost = 60;
  opt.keep_probability = 0;
  EXPECT_FALSE(GenerateGridCity(opt, &rng).ok());
}

TEST(GeneratorsTest, PresetsHitTargetSize) {
  Rng rng(14);
  auto nyc = GenerateNycLike(4000, &rng);
  ASSERT_TRUE(nyc.ok());
  EXPECT_NEAR(nyc->num_nodes(), 4000, 800);
  auto chi = GenerateChicagoLike(3000, &rng);
  ASSERT_TRUE(chi.ok());
  EXPECT_NEAR(chi->num_nodes(), 3000, 800);
}

TEST(GeneratorsTest, ChicagoSparserThanNyc) {
  Rng rng(15);
  auto nyc = GenerateNycLike(4000, &rng);
  auto chi = GenerateChicagoLike(4000, &rng);
  ASSERT_TRUE(nyc.ok() && chi.ok());
  const double nyc_deg =
      static_cast<double>(nyc->num_edges()) / nyc->num_nodes();
  const double chi_deg =
      static_cast<double>(chi->num_edges()) / chi->num_nodes();
  EXPECT_GT(nyc_deg, chi_deg);
}

TEST(GeneratorsTest, PaperFigure1NetworkShape) {
  auto g = PaperFigure1Network();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 8);
  // Two-way streets: every edge has its reverse at equal cost.
  for (const Edge& e : g->EdgeList()) {
    EXPECT_DOUBLE_EQ(g->EdgeCost(e.to, e.from), e.cost);
  }
  // A (0) to B (1) is a single block of cost 1.
  EXPECT_DOUBLE_EQ(g->EdgeCost(0, 1), 1);
}

TEST(GeneratorsTest, InducedSubnetworkRemapsIds) {
  auto g = RoadNetwork::Build(
      4, {{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 0, 4}},
      {{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  ASSERT_TRUE(g.ok());
  auto sub = InducedSubnetwork(*g, {1, 2, 3});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->num_nodes(), 3);
  EXPECT_EQ(sub->num_edges(), 2);  // edges 1->2 and 2->3 survive
  EXPECT_DOUBLE_EQ(sub->EdgeCost(0, 1), 2);
  EXPECT_DOUBLE_EQ(sub->EdgeCost(1, 2), 3);
  EXPECT_DOUBLE_EQ(sub->coord(0).x, 1);
}

TEST(GeneratorsTest, InducedSubnetworkRejectsDuplicatesAndRange) {
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(InducedSubnetwork(*g, {0, 0}).ok());
  EXPECT_FALSE(InducedSubnetwork(*g, {0, 5}).ok());
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  Rng a(99), b(99);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  auto ga = GenerateGridCity(opt, &a);
  auto gb = GenerateGridCity(opt, &b);
  ASSERT_TRUE(ga.ok() && gb.ok());
  EXPECT_EQ(ga->num_nodes(), gb->num_nodes());
  EXPECT_EQ(ga->num_edges(), gb->num_edges());
  auto ea = ga->EdgeList();
  auto eb = gb->EdgeList();
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_DOUBLE_EQ(ea[i].cost, eb[i].cost);
  }
}

}  // namespace
}  // namespace urr

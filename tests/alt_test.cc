#include "routing/alt.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "routing/dijkstra.h"

namespace urr {
namespace {

TEST(AltTest, RejectsBadArguments) {
  Rng rng(1);
  auto g = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(AltIndex::Build(*g, 0, &rng).ok());
  auto empty = RoadNetwork::Build(0, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(AltIndex::Build(*empty, 2, &rng).ok());
}

TEST(AltTest, LandmarkCountClampsToNodes) {
  Rng rng(2);
  auto g = RoadNetwork::Build(3, {{0, 1, 1}, {1, 0, 1}, {1, 2, 1}, {2, 1, 1}});
  ASSERT_TRUE(g.ok());
  auto index = AltIndex::Build(*g, 10, &rng);
  ASSERT_TRUE(index.ok());
  EXPECT_LE(index->num_landmarks(), 3);
}

TEST(AltTest, LowerBoundIsAdmissible) {
  Rng rng(3);
  GridCityOptions opt;
  opt.width = 14;
  opt.height = 14;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto index = AltIndex::Build(*g, 6, &rng);
  ASSERT_TRUE(index.ok());
  DijkstraEngine ref(*g);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId v = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const Cost d = ref.Distance(u, v);
    if (d == kInfiniteCost) continue;
    EXPECT_LE(index->LowerBound(u, v), d + 1e-6) << u << " -> " << v;
    EXPECT_GE(index->LowerBound(u, v), 0);
  }
}

class AltQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AltQueryTest, MatchesDijkstra) {
  Rng rng(GetParam());
  GridCityOptions opt;
  opt.width = 16;
  opt.height = 12;
  opt.keep_probability = 0.88;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto index = AltIndex::Build(*g, 8, &rng);
  ASSERT_TRUE(index.ok());
  AltQuery query(*g, *index);
  DijkstraEngine ref(*g);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const Cost want = ref.Distance(s, t);
    const Cost got = query.Distance(s, t);
    if (want == kInfiniteCost) {
      EXPECT_EQ(got, kInfiniteCost);
    } else {
      EXPECT_NEAR(got, want, 1e-6) << s << " -> " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AltQueryTest, ::testing::Values(4, 5, 6));

TEST(AltTest, MatchesDijkstraOnDirectedGraph) {
  Rng rng(7);
  const NodeId n = 100;
  std::vector<Edge> edges;
  for (NodeId v = 0; v < n; ++v) {
    for (int e = 0; e < 3; ++e) {
      const NodeId w = static_cast<NodeId>(rng.UniformInt(0, n - 1));
      if (w != v) edges.push_back({v, w, rng.Uniform(1, 10)});
    }
  }
  auto g = RoadNetwork::Build(n, edges);
  ASSERT_TRUE(g.ok());
  auto index = AltIndex::Build(*g, 6, &rng);
  ASSERT_TRUE(index.ok());
  AltQuery query(*g, *index);
  DijkstraEngine ref(*g);
  for (int trial = 0; trial < 400; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, n - 1));
    const Cost want = ref.Distance(s, t);
    const Cost got = query.Distance(s, t);
    if (want == kInfiniteCost) {
      EXPECT_EQ(got, kInfiniteCost);
    } else {
      EXPECT_NEAR(got, want, 1e-6);
    }
  }
}

TEST(AltTest, GoalDirectionSettlesFewerNodesThanDijkstra) {
  Rng rng(8);
  GridCityOptions opt;
  opt.width = 30;
  opt.height = 30;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto index = AltIndex::Build(*g, 8, &rng);
  ASSERT_TRUE(index.ok());
  AltQuery query(*g, *index);
  int64_t settled = 0;
  int trials = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    const NodeId t = static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    if (query.Distance(s, t) == kInfiniteCost) continue;
    settled += query.last_settled();
    ++trials;
  }
  ASSERT_GT(trials, 20);
  // Plain Dijkstra settles ~half the graph on average; ALT should do far
  // better on a grid with 8 landmarks.
  EXPECT_LT(settled / trials, g->num_nodes() / 3);
}

TEST(AltTest, OracleAdapter) {
  Rng rng(9);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto oracle = AltOracle::Create(*g, 4, &rng);
  ASSERT_TRUE(oracle.ok());
  DijkstraEngine ref(*g);
  EXPECT_NEAR((*oracle)->Distance(0, g->num_nodes() - 1),
              ref.Distance(0, g->num_nodes() - 1), 1e-6);
  EXPECT_EQ((*oracle)->num_calls(), 1);
}

}  // namespace
}  // namespace urr

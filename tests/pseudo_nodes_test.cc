#include "graph/pseudo_nodes.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "routing/dijkstra.h"

namespace urr {
namespace {

TEST(PseudoNodesTest, ShortEdgesUntouched) {
  auto g = RoadNetwork::Build(2, {{0, 1, 5.0}});
  ASSERT_TRUE(g.ok());
  auto split = SplitLongEdges(*g, 10.0);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->network.num_nodes(), 2);
  EXPECT_EQ(split->network.num_edges(), 1);
}

TEST(PseudoNodesTest, LongEdgeSplitEvenly) {
  // cost 25, d_max 10 -> n_e = floor(25/10) = 2 pseudo nodes, 3 segments
  // of 25/3 each.
  auto g = RoadNetwork::Build(2, {{0, 1, 25.0}}, {{0, 0}, {3, 0}});
  ASSERT_TRUE(g.ok());
  auto split = SplitLongEdges(*g, 10.0);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->network.num_nodes(), 4);
  EXPECT_EQ(split->network.num_edges(), 3);
  for (const Edge& e : split->network.EdgeList()) {
    EXPECT_NEAR(e.cost, 25.0 / 3.0, 1e-9);
  }
  // Coordinates interpolate along the segment.
  EXPECT_NEAR(split->network.coord(2).x, 1.0, 1e-9);
  EXPECT_NEAR(split->network.coord(3).x, 2.0, 1e-9);
}

TEST(PseudoNodesTest, EdgeExactlyAtThresholdNotSplit) {
  auto g = RoadNetwork::Build(2, {{0, 1, 10.0}});
  ASSERT_TRUE(g.ok());
  auto split = SplitLongEdges(*g, 10.0);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->network.num_nodes(), 2);
}

TEST(PseudoNodesTest, OriginMapsPseudoNodesBack) {
  auto g = RoadNetwork::Build(2, {{0, 1, 25.0}});
  ASSERT_TRUE(g.ok());
  auto split = SplitLongEdges(*g, 10.0);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->original_num_nodes, 2);
  EXPECT_EQ(split->origin[0], 0);
  EXPECT_EQ(split->origin[1], 1);
  EXPECT_EQ(split->origin[2], 0);  // pseudo nodes map to the edge tail
  EXPECT_EQ(split->origin[3], 0);
}

TEST(PseudoNodesTest, RejectsBadDmax) {
  auto g = RoadNetwork::Build(2, {{0, 1, 5.0}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(SplitLongEdges(*g, 0).ok());
  EXPECT_FALSE(SplitLongEdges(*g, -3).ok());
}

TEST(PseudoNodesTest, ShortestDistancesPreserved) {
  Rng rng(21);
  GridCityOptions opt;
  opt.width = 12;
  opt.height = 12;
  opt.arterial_fraction = 0.05;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  auto split = SplitLongEdges(*g, opt.block_cost * 1.5);
  ASSERT_TRUE(split.ok());
  ASSERT_GT(split->network.num_nodes(), g->num_nodes());  // something split

  DijkstraEngine before(*g);
  DijkstraEngine after(split->network);
  for (NodeId s = 0; s < g->num_nodes(); s += 17) {
    for (NodeId t = 1; t < g->num_nodes(); t += 23) {
      EXPECT_NEAR(before.Distance(s, t), after.Distance(s, t), 1e-6)
          << "pair " << s << "->" << t;
    }
  }
}

TEST(PseudoNodesTest, AllEdgesBoundedAfterSplit) {
  Rng rng(22);
  GridCityOptions opt;
  opt.width = 15;
  opt.height = 15;
  opt.arterial_fraction = 0.1;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  const Cost d_max = opt.block_cost * 1.2;
  auto split = SplitLongEdges(*g, d_max);
  ASSERT_TRUE(split.ok());
  // Every split segment is at most d_max (an edge of cost c > d_max becomes
  // n_e+1 segments of c/(n_e+1) <= d_max since n_e = floor(c/d_max)).
  for (const Edge& e : split->network.EdgeList()) {
    EXPECT_LE(e.cost, d_max + 1e-9);
  }
}

}  // namespace
}  // namespace urr

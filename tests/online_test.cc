#include "urr/online.h"

#include <gtest/gtest.h>

#include "exp/harness.h"
#include "urr/greedy.h"

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  cfg.seed = seed;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

std::vector<RiderId> ArrivalOrder(int m) {
  std::vector<RiderId> order(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) order[static_cast<size_t>(i)] = i;
  return order;
}

TEST(OnlineTest, DispatchAllProducesValidSolution) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  for (OnlineObjective obj :
       {OnlineObjective::kUtilityGain, OnlineObjective::kMinCostIncrease}) {
    OnlineDispatcher dispatcher(&world->instance, &ctx, obj);
    const UrrSolution& sol =
        dispatcher.DispatchAll(ArrivalOrder(world->instance.num_riders()));
    EXPECT_TRUE(sol.Validate(world->instance).ok());
    EXPECT_GT(dispatcher.num_accepted(), 0);
    EXPECT_EQ(dispatcher.num_accepted() + dispatcher.num_rejected(),
              world->instance.num_riders());
    EXPECT_EQ(sol.NumAssigned(), dispatcher.num_accepted());
  }
}

TEST(OnlineTest, DecisionsAreImmediateAndSticky) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kUtilityGain);
  const DispatchDecision first = dispatcher.Dispatch(0);
  if (first.accepted) {
    // The rider is committed to that vehicle.
    EXPECT_EQ(dispatcher.solution().assignment[0], first.vehicle);
    // Dispatching more riders never moves rider 0.
    dispatcher.Dispatch(1);
    dispatcher.Dispatch(2);
    EXPECT_EQ(dispatcher.solution().assignment[0], first.vehicle);
  }
}

TEST(OnlineTest, MinCostObjectivePicksCheaperInsertions) {
  auto world = SmallWorld(7);
  SolverContext ctx = world->Context();
  OnlineDispatcher utility(&world->instance, &ctx,
                           OnlineObjective::kUtilityGain);
  OnlineDispatcher cost(&world->instance, &ctx,
                        OnlineObjective::kMinCostIncrease);
  const auto order = ArrivalOrder(world->instance.num_riders());
  const UrrSolution& by_utility = utility.DispatchAll(order);
  const UrrSolution& by_cost = cost.DispatchAll(order);
  ASSERT_GT(by_cost.NumAssigned(), 0);
  ASSERT_GT(by_utility.NumAssigned(), 0);
  // Cost-objective dispatch spends no more travel per served rider.
  EXPECT_LE(by_cost.TotalCost() / by_cost.NumAssigned(),
            by_utility.TotalCost() / by_utility.NumAssigned() + 1e-9);
}

TEST(OnlineTest, BatchBeatsOnlineOnUtility) {
  // Batch EG sees all riders at once; online commits greedily in arrival
  // order, so across seeds batch should not lose.
  double batch = 0, online = 0;
  for (uint64_t seed : {1u, 2u, 3u}) {
    auto world = SmallWorld(seed);
    SolverContext ctx = world->Context();
    UrrSolution eg = SolveEfficientGreedy(world->instance, &ctx);
    batch += eg.TotalUtility(world->model);
    OnlineDispatcher dispatcher(&world->instance, &ctx,
                                OnlineObjective::kUtilityGain);
    online += dispatcher
                  .DispatchAll(ArrivalOrder(world->instance.num_riders()))
                  .TotalUtility(world->model);
  }
  EXPECT_GT(batch, online * 0.95);  // batch at least competitive
}

TEST(OnlineTest, RejectedRiderStaysUnassigned) {
  auto world = SmallWorld();
  // Make rider 0 impossible to serve.
  world->instance.riders[0].pickup_deadline = 0.0001;
  world->instance.riders[0].dropoff_deadline = 0.0002;
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kUtilityGain);
  const DispatchDecision d = dispatcher.Dispatch(0);
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(dispatcher.solution().assignment[0], -1);
  EXPECT_EQ(dispatcher.num_rejected(), 1);
}

TEST(OnlineTest, RejectReasonNames) {
  EXPECT_STREQ(RejectReasonName(RejectReason::kNone), "none");
  EXPECT_STREQ(RejectReasonName(RejectReason::kNoReachableVehicle),
               "no_reachable_vehicle");
  EXPECT_STREQ(RejectReasonName(RejectReason::kCapacity), "capacity");
  EXPECT_STREQ(RejectReasonName(RejectReason::kDeadline), "deadline");
}

TEST(OnlineTest, AcceptedDecisionCarriesNoReason) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kUtilityGain);
  for (RiderId r = 0; r < world->instance.num_riders(); ++r) {
    const DispatchDecision d = dispatcher.Dispatch(r);
    if (d.accepted) {
      EXPECT_EQ(d.reason, RejectReason::kNone);
      return;
    }
  }
  FAIL() << "no rider was accepted";
}

TEST(OnlineTest, UnreachableRiderReportsNoReachableVehicle) {
  auto world = SmallWorld();
  // A pickup deadline of ~0 leaves a zero search radius: no vehicle can be
  // reachable (unless one is parked on the rider, which the assert below
  // would surface as kDeadline — not seen with this seed).
  world->instance.riders[0].pickup_deadline = 0.0001;
  world->instance.riders[0].dropoff_deadline = 0.0002;
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kUtilityGain);
  const DispatchDecision d = dispatcher.Dispatch(0);
  ASSERT_FALSE(d.accepted);
  EXPECT_EQ(d.reason, RejectReason::kNoReachableVehicle);
}

TEST(OnlineTest, ZeroCapacityFleetReportsCapacity) {
  for (OnlineObjective obj :
       {OnlineObjective::kUtilityGain, OnlineObjective::kMinCostIncrease}) {
    auto world = SmallWorld();
    for (Vehicle& v : world->instance.vehicles) v.capacity = 0;
    SolverContext ctx = world->Context();
    OnlineDispatcher dispatcher(&world->instance, &ctx, obj);
    const DispatchDecision d = dispatcher.Dispatch(0);
    ASSERT_FALSE(d.accepted);
    EXPECT_EQ(d.reason, RejectReason::kCapacity);
  }
}

TEST(OnlineTest, ImpossibleDropoffReportsDeadline) {
  auto world = SmallWorld();
  // Generous pickup budget (vehicles are reachable) but a dropoff deadline
  // equal to the pickup deadline: the ride itself can never fit.
  Rider& r = world->instance.riders[0];
  r.dropoff_deadline = r.pickup_deadline;
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kMinCostIncrease);
  const DispatchDecision d = dispatcher.Dispatch(0);
  ASSERT_FALSE(d.accepted);
  EXPECT_EQ(d.reason, RejectReason::kDeadline);
}

TEST(OnlineTest, EvaluateArrivalMatchesDispatchWithoutCommitting) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kUtilityGain);
  const DispatchDecision peek = EvaluateArrival(
      world->instance, &ctx, dispatcher.solution(), 0,
      OnlineObjective::kUtilityGain);
  // Pure evaluation: nothing was committed.
  EXPECT_EQ(dispatcher.solution().assignment[0], -1);
  const DispatchDecision d = dispatcher.Dispatch(0);
  EXPECT_EQ(peek.accepted, d.accepted);
  EXPECT_EQ(peek.vehicle, d.vehicle);
  EXPECT_EQ(peek.reason, d.reason);
}

TEST(OnlineTest, DispatchAllSkipsAlreadyAssigned) {
  auto world = SmallWorld();
  SolverContext ctx = world->Context();
  OnlineDispatcher dispatcher(&world->instance, &ctx,
                              OnlineObjective::kUtilityGain);
  dispatcher.Dispatch(0);
  const int accepted_after_first = dispatcher.num_accepted();
  dispatcher.DispatchAll({0, 0, 0});  // repeats must be no-ops
  EXPECT_EQ(dispatcher.num_accepted(), accepted_after_first);
}

}  // namespace
}  // namespace urr

#include "social/social_graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "social/generators.h"

namespace urr {
namespace {

SocialGraph Triangle() {
  // 0-1, 1-2, 0-2 plus isolated 3.
  return *SocialGraph::Build(4, {{0, 1}, {1, 2}, {0, 2}});
}

TEST(SocialGraphTest, BuildCountsAndDegrees) {
  SocialGraph g = Triangle();
  EXPECT_EQ(g.num_users(), 4);
  EXPECT_EQ(g.num_friendships(), 3);
  EXPECT_EQ(g.Degree(0), 2);
  EXPECT_EQ(g.Degree(3), 0);
}

TEST(SocialGraphTest, FriendsAreSorted) {
  auto g = SocialGraph::Build(5, {{4, 0}, {2, 0}, {0, 3}});
  ASSERT_TRUE(g.ok());
  auto f = g->Friends(0);
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], 2);
  EXPECT_EQ(f[1], 3);
  EXPECT_EQ(f[2], 4);
}

TEST(SocialGraphTest, DuplicateEdgesCollapse) {
  auto g = SocialGraph::Build(3, {{0, 1}, {1, 0}, {0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_friendships(), 1);
  EXPECT_EQ(g->Degree(0), 1);
}

TEST(SocialGraphTest, RejectsSelfLoopsAndRange) {
  EXPECT_FALSE(SocialGraph::Build(2, {{0, 0}}).ok());
  EXPECT_FALSE(SocialGraph::Build(2, {{0, 2}}).ok());
  EXPECT_FALSE(SocialGraph::Build(-1, {}).ok());
}

TEST(SocialGraphTest, JaccardTriangle) {
  SocialGraph g = Triangle();
  // Γ(0) = {1,2}, Γ(1) = {0,2}: intersection {2}, union {0,1,2}.
  EXPECT_DOUBLE_EQ(g.Jaccard(0, 1), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.Jaccard(1, 0), g.Jaccard(0, 1));  // symmetric
}

TEST(SocialGraphTest, JaccardDisjointAndEmpty) {
  auto g = SocialGraph::Build(5, {{0, 1}, {2, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->Jaccard(0, 2), 0.0);   // disjoint friend sets
  EXPECT_DOUBLE_EQ(g->Jaccard(0, 4), 0.0);   // one empty
  EXPECT_DOUBLE_EQ(g->Jaccard(4, 4), 0.0);   // both empty -> defined as 0
}

TEST(SocialGraphTest, JaccardIdenticalSets) {
  // 0 and 1 both friend exactly {2, 3}.
  auto g = SocialGraph::Build(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->Jaccard(0, 1), 1.0);
}

TEST(SocialGraphTest, JaccardBoundedByOne) {
  Rng rng(81);
  SocialGenOptions opt;
  opt.num_users = 300;
  auto g = GeneratePowerLawFriends(opt, &rng);
  ASSERT_TRUE(g.ok());
  for (int trial = 0; trial < 500; ++trial) {
    const UserId a = static_cast<UserId>(rng.UniformInt(0, 299));
    const UserId b = static_cast<UserId>(rng.UniformInt(0, 299));
    const double s = g->Jaccard(a, b);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SocialGeneratorTest, AverageDegreeApproximatesTarget) {
  Rng rng(82);
  SocialGenOptions opt;
  opt.num_users = 4000;
  opt.average_degree = 9.7;
  auto g = GeneratePowerLawFriends(opt, &rng);
  ASSERT_TRUE(g.ok());
  const double avg = 2.0 * g->num_friendships() / g->num_users();
  // Duplicate collapses and self-pair rejections lose some edges.
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 12.0);
}

TEST(SocialGeneratorTest, DegreeDistributionIsSkewed) {
  Rng rng(83);
  SocialGenOptions opt;
  opt.num_users = 3000;
  auto g = GeneratePowerLawFriends(opt, &rng);
  ASSERT_TRUE(g.ok());
  int max_degree = 0;
  int64_t total = 0;
  for (UserId u = 0; u < g->num_users(); ++u) {
    max_degree = std::max(max_degree, g->Degree(u));
    total += g->Degree(u);
  }
  const double avg = static_cast<double>(total) / g->num_users();
  // Scale-free-ish: the hub's degree is far above the mean.
  EXPECT_GT(max_degree, avg * 5);
}

TEST(SocialGeneratorTest, RejectsBadOptions) {
  Rng rng(84);
  SocialGenOptions opt;
  opt.exponent = 1.0;
  EXPECT_FALSE(GeneratePowerLawFriends(opt, &rng).ok());
  opt.exponent = 2.4;
  opt.num_users = -1;
  EXPECT_FALSE(GeneratePowerLawFriends(opt, &rng).ok());
}

TEST(SocialGeneratorTest, EmptyGraphIsFine) {
  Rng rng(85);
  SocialGenOptions opt;
  opt.num_users = 0;
  auto g = GeneratePowerLawFriends(opt, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_users(), 0);
}

}  // namespace
}  // namespace urr

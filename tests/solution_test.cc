#include "urr/solution.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

class SolutionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<Edge> edges;
    for (NodeId v = 0; v + 1 < 6; ++v) {
      edges.push_back({v, v + 1, 10});
      edges.push_back({v + 1, v, 10});
    }
    auto g = RoadNetwork::Build(6, edges);
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);

    instance_.network = network_.get();
    instance_.riders = {{1, 3, 200, 500, -1}, {2, 4, 200, 500, -1}};
    instance_.vehicles = {{0, 2}, {5, 2}};
    model_ = std::make_unique<UtilityModel>(&instance_, UtilityParams{0, 0});
  }

  UrrInstance instance_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
  std::unique_ptr<UtilityModel> model_;
};

TEST_F(SolutionTest, EmptySolutionIsValid) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  EXPECT_EQ(sol.schedules.size(), 2u);
  EXPECT_EQ(sol.assignment, (std::vector<int>{-1, -1}));
  EXPECT_TRUE(sol.Validate(instance_).ok());
  EXPECT_EQ(sol.NumAssigned(), 0);
  EXPECT_DOUBLE_EQ(sol.TotalCost(), 0);
  EXPECT_DOUBLE_EQ(sol.TotalUtility(*model_), 0);
}

TEST_F(SolutionTest, MetricsAfterInsertion) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  auto plan = ArrangeSingleRider(&sol.schedules[0], instance_.Trip(0));
  ASSERT_TRUE(plan.ok());
  sol.assignment[0] = 0;
  EXPECT_TRUE(sol.Validate(instance_).ok());
  EXPECT_EQ(sol.NumAssigned(), 1);
  EXPECT_DOUBLE_EQ(sol.TotalCost(), 30);  // 0->1 (10) + 1->3 (20)
  // (α,β) = (0,0): pure trajectory utility; no detour -> 1.0.
  EXPECT_NEAR(sol.TotalUtility(*model_), 1.0, 1e-9);
}

TEST_F(SolutionTest, ValidateCatchesInconsistentAssignment) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  ASSERT_TRUE(ArrangeSingleRider(&sol.schedules[0], instance_.Trip(0)).ok());
  // Scheduled on vehicle 0 but assignment says unassigned.
  EXPECT_FALSE(sol.Validate(instance_).ok());
  sol.assignment[0] = 1;  // wrong vehicle
  EXPECT_FALSE(sol.Validate(instance_).ok());
  sol.assignment[0] = 0;
  EXPECT_TRUE(sol.Validate(instance_).ok());
}

TEST_F(SolutionTest, ValidateCatchesMissingSchedule) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  sol.assignment[0] = 1;  // assigned but not scheduled
  EXPECT_FALSE(sol.Validate(instance_).ok());
}

TEST_F(SolutionTest, EvaluateInsertionFeasible) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  const CandidateEval eval =
      EvaluateInsertion(instance_, *model_, sol, 0, 0);
  ASSERT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.delta_cost, 30);
  EXPECT_NEAR(eval.delta_utility, 1.0, 1e-9);  // new rider at σ = 1
}

TEST_F(SolutionTest, EvaluateInsertionInfeasible) {
  UrrInstance tight = instance_;
  tight.riders[0].pickup_deadline = 5;  // vehicle 0 needs 10 to reach node 1
  UrrSolution sol = MakeEmptySolution(tight, oracle_.get());
  UtilityModel model(&tight, UtilityParams{0, 0});
  EXPECT_FALSE(EvaluateInsertion(tight, model, sol, 0, 0).feasible);
}

TEST_F(SolutionTest, EvaluateInsertionSkipUtility) {
  UrrSolution sol = MakeEmptySolution(instance_, oracle_.get());
  const CandidateEval eval = EvaluateInsertion(instance_, *model_, sol, 0, 0,
                                               /*need_utility=*/false);
  ASSERT_TRUE(eval.feasible);
  EXPECT_DOUBLE_EQ(eval.delta_utility, 0.0);  // not computed
  EXPECT_DOUBLE_EQ(eval.delta_cost, 30);
}

TEST_F(SolutionTest, ValidVehiclesForRiderUsesBudget) {
  VehicleIndex index(*network_, {0, 5});
  // Rider 0 at node 1: vehicle 0 at distance 10, vehicle 1 at distance 40.
  instance_.riders[0].pickup_deadline = 15;
  auto valid = ValidVehiclesForRider(instance_, &index, 0, nullptr);
  EXPECT_EQ(valid, (std::vector<int>{0}));
  instance_.riders[0].pickup_deadline = 100;
  valid = ValidVehiclesForRider(instance_, &index, 0, nullptr);
  std::sort(valid.begin(), valid.end());
  EXPECT_EQ(valid, (std::vector<int>{0, 1}));
}

TEST_F(SolutionTest, ValidVehiclesRespectsAllowedMask) {
  VehicleIndex index(*network_, {0, 5});
  instance_.riders[0].pickup_deadline = 100;
  std::vector<bool> allowed = {false, true};
  auto valid = ValidVehiclesForRider(instance_, &index, 0, &allowed);
  EXPECT_EQ(valid, (std::vector<int>{1}));
}

TEST_F(SolutionTest, ValidVehiclesNegativeBudgetEmpty) {
  VehicleIndex index(*network_, {0, 5});
  instance_.riders[0].pickup_deadline = -10;
  EXPECT_TRUE(ValidVehiclesForRider(instance_, &index, 0, nullptr).empty());
}

}  // namespace
}  // namespace urr

#include "sched/transfer_sequence.h"

#include "sched/insertion.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

/// Line network 0 -10- 1 -10- 2 -10- 3 -10- 4, two-way.
Result<RoadNetwork> LineCity() {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 5; ++v) {
    edges.push_back({v, v + 1, 10});
    edges.push_back({v + 1, v, 10});
  }
  return RoadNetwork::Build(5, edges);
}

class TransferSequenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = LineCity();
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
  }

  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
};

TEST_F(TransferSequenceTest, EmptySequence) {
  TransferSequence seq(0, 100, 2, oracle_.get());
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.num_stops(), 0);
  EXPECT_DOUBLE_EQ(seq.TotalCost(), 0);
  EXPECT_DOUBLE_EQ(seq.EndTime(), 100);
  EXPECT_EQ(seq.EndOnboard(), 0);
  EXPECT_TRUE(seq.Validate().ok());
  EXPECT_TRUE(seq.Riders().empty());
}

TEST_F(TransferSequenceTest, DerivedFieldsMatchEquations) {
  // Vehicle at 0 (t=0, cap 2): pickup r0 at node 1 (dl 50), drop at node 3
  // (dl 100).
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  // Leg costs (Eq. 6 inputs): 0->1 = 10, 1->3 = 20.
  EXPECT_DOUBLE_EQ(seq.leg_cost(0), 10);
  EXPECT_DOUBLE_EQ(seq.leg_cost(1), 20);
  EXPECT_DOUBLE_EQ(seq.EarliestStart(0), 0);
  EXPECT_DOUBLE_EQ(seq.EarliestArrival(0), 10);
  EXPECT_DOUBLE_EQ(seq.EarliestStart(1), 10);
  EXPECT_DOUBLE_EQ(seq.EarliestArrival(1), 30);
  // Eq. 7: latest completion of the last leg = its deadline; leg 0 =
  // min(100 - 20, 50) = 50.
  EXPECT_DOUBLE_EQ(seq.LatestCompletion(1), 100);
  EXPECT_DOUBLE_EQ(seq.LatestCompletion(0), 50);
  // Eq. 8: ft_1 = 100 - 10 - 20 = 70; ft_0 = min(50 - 0 - 10, 70) = 40.
  EXPECT_DOUBLE_EQ(seq.FlexTime(1), 70);
  EXPECT_DOUBLE_EQ(seq.FlexTime(0), 40);
  // Occupancy: leg 0 = to pickup (0 onboard), leg 1 = rider aboard.
  EXPECT_EQ(seq.Onboard(0), 0);
  EXPECT_EQ(seq.Onboard(1), 1);
  EXPECT_DOUBLE_EQ(seq.TotalCost(), 30);
  EXPECT_TRUE(seq.Validate().ok());
}

TEST_F(TransferSequenceTest, PaperExample2FlexTime) {
  // Mirrors Example 2's structure: vehicle at B needs to reach A before 4
  // with travel cost 1 => flex = 4 - 0 - 1 = 3.
  auto g = RoadNetwork::Build(2, {{0, 1, 1}, {1, 0, 1}});
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  TransferSequence seq(1, 0, 2, &oracle);
  seq.InsertStop(0, {0, 0, StopType::kPickup, 4});
  EXPECT_DOUBLE_EQ(seq.FlexTime(0), 3);
}

TEST_F(TransferSequenceTest, OnboardRidersSets) {
  // Two riders sharing: pick r0 at 1, pick r1 at 2, drop r0 at 3, drop r1
  // at 4.
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 1e6});
  seq.InsertStop(1, {2, 1, StopType::kPickup, 1e6});
  seq.InsertStop(2, {3, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {4, 1, StopType::kDropoff, 1e6});
  EXPECT_EQ(seq.OnboardRiders(0), (std::vector<RiderId>{}));
  EXPECT_EQ(seq.OnboardRiders(1), (std::vector<RiderId>{0}));
  EXPECT_EQ(seq.OnboardRiders(2), (std::vector<RiderId>{0, 1}));
  EXPECT_EQ(seq.OnboardRiders(3), (std::vector<RiderId>{1}));
  EXPECT_EQ(seq.Onboard(2), 2);
  EXPECT_EQ(seq.EndOnboard(), 0);
  EXPECT_EQ(seq.Riders(), (std::vector<RiderId>{0, 1}));
  EXPECT_EQ(seq.RiderStops(1), (std::pair<int, int>{1, 3}));
  EXPECT_EQ(seq.RiderStops(9), (std::pair<int, int>{-1, -1}));
}

TEST_F(TransferSequenceTest, ValidateCatchesDeadlineViolation) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {4, 0, StopType::kPickup, 5});  // needs 40 > 5
  const Status st = seq.Validate();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineViolated);
}

TEST_F(TransferSequenceTest, ValidateCatchesCapacity) {
  TransferSequence seq(0, 0, 1, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 1e6});
  seq.InsertStop(1, {2, 1, StopType::kPickup, 1e6});
  seq.InsertStop(2, {3, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {4, 1, StopType::kDropoff, 1e6});
  EXPECT_EQ(seq.Validate().code(), StatusCode::kCapacityExceeded);
}

TEST_F(TransferSequenceTest, ValidateCatchesOrdering) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {3, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(1, {1, 0, StopType::kPickup, 1e6});
  EXPECT_EQ(seq.Validate().code(), StatusCode::kInfeasible);
}

TEST_F(TransferSequenceTest, RemoveRider) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 1e6});
  seq.InsertStop(1, {2, 1, StopType::kPickup, 1e6});
  seq.InsertStop(2, {3, 0, StopType::kDropoff, 1e6});
  seq.InsertStop(3, {4, 1, StopType::kDropoff, 1e6});
  const Cost cost_before = seq.TotalCost();
  ASSERT_TRUE(seq.RemoveRider(0).ok());
  EXPECT_EQ(seq.num_stops(), 2);
  EXPECT_EQ(seq.Riders(), (std::vector<RiderId>{1}));
  // On a line the remaining trip can cost the same; never more.
  EXPECT_LE(seq.TotalCost(), cost_before);
  EXPECT_DOUBLE_EQ(seq.TotalCost(), 40);  // 0->2 + 2->4
  EXPECT_TRUE(seq.Validate().ok());
  EXPECT_EQ(seq.RemoveRider(0).code(), StatusCode::kNotFound);
}

TEST_F(TransferSequenceTest, UnmatchedPickupOnboardToEnd) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 1e6});
  seq.InsertStop(1, {2, 1, StopType::kPickup, 1e6});
  seq.InsertStop(2, {3, 1, StopType::kDropoff, 1e6});
  // Rider 0 has no dropoff: onboard during legs 1 and 2, and at the end.
  EXPECT_EQ(seq.Onboard(1), 1);
  EXPECT_EQ(seq.Onboard(2), 2);
  EXPECT_EQ(seq.EndOnboard(), 1);
}

TEST_F(TransferSequenceTest, FlexTimePropertyOnRandomSchedules) {
  // Property: on a feasible random schedule, delaying any leg by its flex
  // time still leaves every downstream deadline satisfiable (flex is the
  // min slack downstream, Eq. 8).
  Rng rng(111);
  GridCityOptions opt;
  opt.width = 10;
  opt.height = 10;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  for (int trial = 0; trial < 40; ++trial) {
    TransferSequence seq(
        static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1)), 0, 4,
        &oracle);
    // Generous deadlines -> feasible by construction.
    for (int r = 0; r < 3; ++r) {
      const int w = seq.num_stops();
      seq.InsertStop(w, {static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1)),
                         r, StopType::kPickup, 1e6});
      seq.InsertStop(w + 1,
                     {static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1)),
                      r, StopType::kDropoff, 1e6});
    }
    ASSERT_TRUE(seq.Validate().ok());
    for (int u = 0; u < seq.num_stops(); ++u) {
      // Arrival when leg u is delayed by flex: every later stop's arrival
      // shifts by the same amount and must still meet its deadline.
      const Cost delay = seq.FlexTime(u);
      ASSERT_GE(delay, 0);
      for (int v = u; v < seq.num_stops(); ++v) {
        EXPECT_LE(seq.EarliestArrival(v) + delay,
                  seq.stop(v).deadline + 1e-6);
      }
    }
  }
}

TEST_F(TransferSequenceTest, DerivedFieldsMatchIndependentReference) {
  // Property: the incrementally maintained fields equal a from-scratch
  // evaluation of Eqs. 6-8 written directly from the paper.
  Rng rng(112);
  GridCityOptions opt;
  opt.width = 9;
  opt.height = 9;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  DijkstraEngine ref_engine(*g);
  for (int trial = 0; trial < 25; ++trial) {
    const NodeId start =
        static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
    TransferSequence seq(start, rng.Uniform(0, 100), 4, &oracle);
    for (int r = 0; r < 4; ++r) {
      RiderTrip trip{r,
                     static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1)),
                     static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1)),
                     seq.now() + rng.Uniform(500, 4000), 0};
      if (trip.source == trip.destination) continue;
      trip.dropoff_deadline = trip.pickup_deadline + rng.Uniform(500, 4000);
      auto plan = FindBestInsertion(seq, trip);
      if (plan.ok()) {
        ASSERT_TRUE(ApplyInsertion(&seq, trip, *plan).ok());
      }
    }
    const int w = seq.num_stops();
    if (w == 0) continue;
    // Reference Eq. 6: earliest arrivals forward.
    std::vector<Cost> leg(static_cast<size_t>(w));
    std::vector<Cost> arr(static_cast<size_t>(w));
    for (int u = 0; u < w; ++u) {
      const NodeId from = u == 0 ? start : seq.stop(u - 1).location;
      leg[static_cast<size_t>(u)] =
          ref_engine.Distance(from, seq.stop(u).location);
      arr[static_cast<size_t>(u)] =
          (u == 0 ? seq.now() : arr[static_cast<size_t>(u) - 1]) +
          leg[static_cast<size_t>(u)];
    }
    // Reference Eq. 7 backward.
    std::vector<Cost> latest(static_cast<size_t>(w));
    latest[static_cast<size_t>(w) - 1] = seq.stop(w - 1).deadline;
    for (int u = w - 2; u >= 0; --u) {
      latest[static_cast<size_t>(u)] =
          std::min(latest[static_cast<size_t>(u) + 1] -
                       leg[static_cast<size_t>(u) + 1],
                   seq.stop(u).deadline);
    }
    // Reference Eq. 8 backward.
    std::vector<Cost> flex(static_cast<size_t>(w));
    for (int u = w - 1; u >= 0; --u) {
      const Cost estart = u == 0 ? seq.now() : arr[static_cast<size_t>(u) - 1];
      const Cost slack =
          latest[static_cast<size_t>(u)] - estart - leg[static_cast<size_t>(u)];
      flex[static_cast<size_t>(u)] =
          u == w - 1 ? slack : std::min(slack, flex[static_cast<size_t>(u) + 1]);
    }
    for (int u = 0; u < w; ++u) {
      EXPECT_NEAR(seq.leg_cost(u), leg[static_cast<size_t>(u)], 1e-9);
      EXPECT_NEAR(seq.EarliestArrival(u), arr[static_cast<size_t>(u)], 1e-9);
      EXPECT_NEAR(seq.LatestCompletion(u), latest[static_cast<size_t>(u)], 1e-9);
      EXPECT_NEAR(seq.FlexTime(u), flex[static_cast<size_t>(u)], 1e-9);
    }
  }
}

TEST_F(TransferSequenceTest, AdvanceToPopsStrictlyEarlierStops) {
  // Vehicle at 0 (t=0): pickup r0 at node 1 (arrival 10), drop at node 3
  // (arrival 30).
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});

  // Strict `<`: a stop reached exactly at t stays pending.
  EXPECT_TRUE(seq.AdvanceTo(10).empty());
  EXPECT_EQ(seq.commit_floor(), 1);  // mid-leg (10 > now = 0)
  EXPECT_EQ(seq.num_stops(), 2);

  const auto done = seq.AdvanceTo(15);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].stop.rider, 0);
  EXPECT_EQ(done[0].stop.type, StopType::kPickup);
  EXPECT_DOUBLE_EQ(done[0].time, 10);
  // The vehicle re-anchors at the executed pickup; the rider is onboard.
  EXPECT_EQ(seq.start_location(), 1);
  EXPECT_DOUBLE_EQ(seq.now(), 10);
  EXPECT_EQ(seq.initial_onboard(), (std::vector<RiderId>{0}));
  EXPECT_EQ(seq.commit_floor(), 1);  // mid-leg towards the dropoff
  ASSERT_EQ(seq.num_stops(), 1);
  // The remaining arrival is rebuilt bitwise-identically (same float sums).
  EXPECT_EQ(seq.EarliestArrival(0), 30);
  EXPECT_EQ(seq.Onboard(0), 1);
  EXPECT_TRUE(seq.Validate().ok());
}

TEST_F(TransferSequenceTest, AdvanceToDrainsAndIdles) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  const auto done = seq.AdvanceTo(1000);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[1].stop.type, StopType::kDropoff);
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.start_location(), 3);
  EXPECT_DOUBLE_EQ(seq.now(), 1000);  // idle wait at the anchor
  EXPECT_EQ(seq.commit_floor(), 0);
  EXPECT_TRUE(seq.initial_onboard().empty());
  EXPECT_TRUE(seq.Validate().ok());
}

TEST_F(TransferSequenceTest, PositionAtTracksTheRoute) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  RoutePosition pos = seq.PositionAt(5);  // mid-leg to the pickup
  EXPECT_EQ(pos.at, 0);
  EXPECT_DOUBLE_EQ(pos.depart_time, 0);
  EXPECT_EQ(pos.next_stop, 0);
  EXPECT_DOUBLE_EQ(pos.next_arrival, 10);
  pos = seq.PositionAt(15);  // between the stops
  EXPECT_EQ(pos.at, 1);
  EXPECT_DOUBLE_EQ(pos.depart_time, 10);
  EXPECT_EQ(pos.next_stop, 1);
  EXPECT_DOUBLE_EQ(pos.next_arrival, 30);
  pos = seq.PositionAt(99);  // past the last stop
  EXPECT_EQ(pos.at, 3);
  EXPECT_EQ(pos.next_stop, -1);
}

TEST_F(TransferSequenceTest, OnboardRiderCannotBeRemoved) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  seq.AdvanceTo(15);  // pickup executed; r0 onboard
  EXPECT_EQ(seq.RemoveRider(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(seq.ExciseRider(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(seq.num_stops(), 1);  // schedule untouched
}

TEST_F(TransferSequenceTest, ExciseRiderMidLegCompletesTheLegAsDeadhead) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  seq.AdvanceTo(5);  // mid-leg towards the pickup, nothing executed
  ASSERT_EQ(seq.commit_floor(), 1);
  ASSERT_TRUE(seq.ExciseRider(0).ok());
  // The in-flight leg became a waypoint: the vehicle ends at the would-be
  // pickup node at its arrival time, with an empty schedule.
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.start_location(), 1);
  EXPECT_DOUBLE_EQ(seq.now(), 10);
  EXPECT_EQ(seq.commit_floor(), 0);
}

TEST_F(TransferSequenceTest, ExciseRiderBeforeDepartureIsAPlainRemoval) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  seq.InsertStop(1, {2, 1, StopType::kPickup, 60});
  seq.InsertStop(3, {4, 1, StopType::kDropoff, 200});
  ASSERT_TRUE(seq.ExciseRider(1).ok());  // vehicle has not departed
  EXPECT_EQ(seq.Riders(), (std::vector<RiderId>{0}));
  EXPECT_EQ(seq.start_location(), 0);
  EXPECT_DOUBLE_EQ(seq.now(), 0);
  EXPECT_EQ(seq.ExciseRider(7).code(), StatusCode::kNotFound);
}

TEST_F(TransferSequenceTest, DoubleExciseReturnsNotFound) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 0, StopType::kDropoff, 100});
  seq.AdvanceTo(5);  // mid-leg towards the pickup
  ASSERT_TRUE(seq.ExciseRider(0).ok());
  // A second excise of the same rider must be a clean NotFound on the
  // already-emptied schedule — no anchor mutation, no crash.
  const NodeId anchor = seq.start_location();
  const Cost now = seq.now();
  EXPECT_EQ(seq.ExciseRider(0).code(), StatusCode::kNotFound);
  EXPECT_EQ(seq.start_location(), anchor);
  EXPECT_DOUBLE_EQ(seq.now(), now);
  EXPECT_TRUE(seq.Validate().ok());
}

TEST_F(TransferSequenceTest, ExciseLastRemainingRiderLeavesAUsableSchedule) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {2, 5, StopType::kPickup, 60});
  seq.InsertStop(1, {4, 5, StopType::kDropoff, 200});
  ASSERT_TRUE(seq.ExciseRider(5).ok());  // parked: plain removal
  EXPECT_TRUE(seq.empty());
  EXPECT_EQ(seq.start_location(), 0);
  EXPECT_DOUBLE_EQ(seq.EndTime(), seq.now());
  EXPECT_TRUE(seq.Validate().ok());
  // The emptied schedule must accept fresh work as if newly constructed.
  seq.InsertStop(0, {1, 6, StopType::kPickup, 50});
  seq.InsertStop(1, {3, 6, StopType::kDropoff, 150});
  EXPECT_TRUE(seq.Validate().ok());
  EXPECT_EQ(seq.Riders(), (std::vector<RiderId>{6}));
}

// After a mid-leg excise, every derived field (Eq. 6 arrivals, Eq. 7 latest
// completions, Eq. 8 flex times, onboard counts) must equal a from-scratch
// sequence built at the post-deadhead anchor with the surviving stops.
TEST_F(TransferSequenceTest, ExciseMatchesFromScratchRebuild) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {1, 0, StopType::kPickup, 50});
  seq.InsertStop(1, {2, 1, StopType::kPickup, 60});
  seq.InsertStop(2, {3, 0, StopType::kDropoff, 150});
  seq.InsertStop(3, {4, 1, StopType::kDropoff, 200});
  seq.AdvanceTo(5);  // mid-leg towards rider 0's pickup at node 1
  ASSERT_EQ(seq.commit_floor(), 1);
  ASSERT_TRUE(seq.ExciseRider(0).ok());

  // Deadhead completed: anchored at node 1 at t=10, two stops survive.
  ASSERT_EQ(seq.start_location(), 1);
  ASSERT_DOUBLE_EQ(seq.now(), 10);
  ASSERT_EQ(seq.num_stops(), 2);

  TransferSequence fresh(1, 10, 2, oracle_.get());
  fresh.InsertStop(0, {2, 1, StopType::kPickup, 60});
  fresh.InsertStop(1, {4, 1, StopType::kDropoff, 200});
  for (int u = 0; u < seq.num_stops(); ++u) {
    EXPECT_DOUBLE_EQ(seq.leg_cost(u), fresh.leg_cost(u)) << "leg " << u;
    EXPECT_DOUBLE_EQ(seq.EarliestArrival(u), fresh.EarliestArrival(u))
        << "leg " << u;
    EXPECT_DOUBLE_EQ(seq.LatestCompletion(u), fresh.LatestCompletion(u))
        << "leg " << u;
    EXPECT_DOUBLE_EQ(seq.FlexTime(u), fresh.FlexTime(u)) << "leg " << u;
    EXPECT_EQ(seq.Onboard(u), fresh.Onboard(u)) << "leg " << u;
  }
  EXPECT_DOUBLE_EQ(seq.TotalCost(), fresh.TotalCost());
  EXPECT_DOUBLE_EQ(seq.EndTime(), fresh.EndTime());
  EXPECT_TRUE(seq.Validate().ok());
}

TEST_F(TransferSequenceTest, InsertionRespectsCommitFloor) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  seq.InsertStop(0, {3, 0, StopType::kPickup, 1e6});
  seq.InsertStop(1, {4, 0, StopType::kDropoff, 1e6});
  seq.AdvanceTo(5);  // mid-leg towards node 3
  ASSERT_EQ(seq.commit_floor(), 1);
  // A rider right next to the vehicle's current position: the best legal
  // pickup position is AFTER the committed stop, never diverting the leg.
  const RiderTrip trip{1, 0, 1, 1e6, 1e6};
  const auto plan = FindBestInsertion(seq, trip);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_GE(plan->pickup_pos, seq.commit_floor());
  InsertionPlan diverting = *plan;
  diverting.pickup_pos = 0;
  diverting.dropoff_pos = 1;
  EXPECT_EQ(ApplyInsertion(&seq, trip, diverting).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace urr

#include "exp/harness.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/csv.h"
#include "exp/sweep.h"

namespace urr {
namespace {

ExperimentConfig SmallConfig(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 200;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 80;
  cfg.num_vehicles = 20;
  cfg.seed = seed;
  cfg.gbs.k = 3;
  cfg.gbs.d_max = 200;
  return cfg;
}

TEST(HarnessTest, BuildWorldWiresEverything) {
  auto world = BuildWorld(SmallConfig());
  ASSERT_TRUE(world.ok()) << world.status();
  ExperimentWorld& w = **world;
  EXPECT_GT(w.network.num_nodes(), 500);
  EXPECT_EQ(w.instance.num_riders(), 80);
  EXPECT_EQ(w.instance.num_vehicles(), 20);
  EXPECT_EQ(w.instance.network, &w.network);
  EXPECT_EQ(w.instance.social, &w.social);
  EXPECT_GT(w.max_speed, 0);
  SolverContext ctx = w.Context();
  EXPECT_NE(ctx.oracle, nullptr);
  EXPECT_NE(ctx.model, nullptr);
  EXPECT_NE(ctx.vehicle_index, nullptr);
  EXPECT_NE(ctx.rng, nullptr);
}

TEST(HarnessTest, ChicagoPresetBuilds) {
  ExperimentConfig cfg = SmallConfig();
  cfg.city = CityKind::kChicagoLike;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok()) << world.status();
}

TEST(HarnessTest, RealModeBuilds) {
  ExperimentConfig cfg = SmallConfig();
  cfg.synthetic = false;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok()) << world.status();
  EXPECT_EQ((*world)->instance.num_riders(), 80);
}

TEST(HarnessTest, ApproachNamesAreStable) {
  EXPECT_EQ(ApproachName(Approach::kCostFirst), "CF");
  EXPECT_EQ(ApproachName(Approach::kEfficientGreedy), "EG");
  EXPECT_EQ(ApproachName(Approach::kBilateral), "BA");
  EXPECT_EQ(ApproachName(Approach::kGbsEg), "GBS+EG");
  EXPECT_EQ(ApproachName(Approach::kGbsBa), "GBS+BA");
  EXPECT_EQ(AllApproaches().size(), 5u);
}

TEST(HarnessTest, RunApproachReportsMetrics) {
  auto world = BuildWorld(SmallConfig());
  ASSERT_TRUE(world.ok());
  for (Approach a : AllApproaches()) {
    auto res = RunApproach(world->get(), a);
    ASSERT_TRUE(res.ok()) << ApproachName(a) << ": " << res.status();
    EXPECT_EQ(res->name, ApproachName(a));
    EXPECT_GE(res->utility, 0);
    EXPECT_GE(res->seconds, 0);
    EXPECT_GE(res->assigned, 0);
    EXPECT_LE(res->assigned, 80);
  }
}

TEST(HarnessTest, GbsPreprocessingIsCached) {
  auto world = BuildWorld(SmallConfig());
  ASSERT_TRUE(world.ok());
  auto p1 = (*world)->GbsPreprocessing();
  auto p2 = (*world)->GbsPreprocessing();
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);  // same pointer: computed once
}

TEST(SweepTest, RunSweepCollectsRows) {
  SweepPoint p1{"80", SmallConfig(1)};
  SweepPoint p2{"40", SmallConfig(2)};
  p2.config.num_riders = 40;
  auto sweep = RunSweep("m", {p1, p2},
                        {Approach::kCostFirst, Approach::kEfficientGreedy});
  ASSERT_TRUE(sweep.ok()) << sweep.status();
  ASSERT_EQ(sweep->rows.size(), 2u);
  ASSERT_EQ(sweep->rows[0].size(), 2u);
  EXPECT_EQ(sweep->labels[0], "80");
  EXPECT_EQ(sweep->rows[0][0].name, "CF");
  // Printing must not crash and must mention every approach.
  PrintSweep(*sweep);
}

TEST(SweepTest, CsvDumpRoundTrips) {
  SweepPoint p{"x", SmallConfig(3)};
  auto sweep = RunSweep("param", {p}, {Approach::kCostFirst});
  ASSERT_TRUE(sweep.ok());
  const std::string path = ::testing::TempDir() + "/urr_sweep.csv";
  ASSERT_TRUE(WriteSweepCsv(*sweep, path).ok());
  auto csv = ReadCsvFile(path);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv->rows.size(), 1u);
  EXPECT_EQ(csv->header[0], "param");
  std::remove(path.c_str());
  EXPECT_TRUE(WriteSweepCsv(*sweep, "").ok());  // empty path is a no-op
}

}  // namespace
}  // namespace urr

// Toggle-matrix differential suite for ST-index candidate retrieval
// (DESIGN.md §14): with --st-index on, every window solver (CF / EG / BA /
// GBS+EG / GBS+BA) must produce a byte-identical serialized event log and
// solution fingerprint to the reverse-Dijkstra baseline, at 1 / 2 / 8
// evaluation threads, on the per-arrival (window = 0) path, and under fault
// injection (breakdowns, no-shows, edge disruptions — which force overlay
// epoch re-buckets). Runs on a quantized grid city so the confirm oracle
// and the prefilter Dijkstra agree bitwise.
#include <gtest/gtest.h>

#include <string>

#include "engine/engine.h"
#include "exp/harness.h"

namespace urr {
namespace {

ExperimentConfig GridConfig(int num_threads) {
  ExperimentConfig cfg;
  cfg.city = CityKind::kGrid;
  cfg.grid_width = 10;
  cfg.grid_height = 8;
  cfg.quantize = 1;
  cfg.num_social_users = 200;
  cfg.num_trip_records = 500;
  cfg.num_riders = 60;
  cfg.num_vehicles = 15;
  cfg.seed = 7;
  cfg.num_threads = num_threads;
  return cfg;
}

StreamingWorkload CleanWorkload(const ExperimentWorld& world) {
  Rng rng(world.config.seed + 100);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = 1.0;
  opt.cancel_fraction = 0.1;
  return MakeStreamingWorkload(world.instance, opt, &rng);
}

StreamingWorkload FaultedWorkload(const ExperimentWorld& world) {
  StreamingWorkload workload = CleanWorkload(world);
  FaultPlanOptions fopt;
  fopt.breakdown_fraction = 0.15;
  fopt.no_show_fraction = 0.1;
  fopt.num_edge_faults = 6;
  Rng fault_rng(world.config.seed + 1000);
  workload.faults = MakeFaultPlan(workload, fopt, &fault_rng);
  EXPECT_FALSE(workload.faults.Empty());
  return workload;
}

struct RunResult {
  std::string log;
  std::string fingerprint;
  EngineMetrics metrics;
};

RunResult RunEngine(ExperimentWorld* world, const StreamingWorkload& workload,
                    WindowSolver solver, bool st_index, Cost window = 20) {
  UtilityModel model(&workload.instance,
                     UtilityParams{world->config.alpha, world->config.beta});
  SolverContext ctx = world->Context();
  ctx.model = &model;
  EngineConfig cfg;
  cfg.window = window;
  cfg.solver = solver;
  cfg.use_st_index = st_index;
  cfg.validate_invariants = true;
  DispatchEngine engine(&workload, &ctx, cfg);
  const Status st = engine.Run();
  EXPECT_TRUE(st.ok()) << st;
  return {engine.SerializedLog(), engine.SolutionFingerprint(),
          engine.metrics()};
}

TEST(StToggleDifferentialTest, AllSolversByteIdenticalAcrossThreads) {
  for (WindowSolver solver :
       {WindowSolver::kCostFirst, WindowSolver::kEfficientGreedy,
        WindowSolver::kBilateral, WindowSolver::kGbsEg,
        WindowSolver::kGbsBa}) {
    SCOPED_TRACE(WindowSolverName(solver));
    auto baseline_world = BuildWorld(GridConfig(1));
    ASSERT_TRUE(baseline_world.ok()) << baseline_world.status();
    const StreamingWorkload workload = CleanWorkload(**baseline_world);
    const RunResult baseline =
        RunEngine(baseline_world->get(), workload, solver, /*st_index=*/false);
    ASSERT_FALSE(baseline.log.empty());
    EXPECT_FALSE(baseline.metrics.st_index_active);

    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      auto world = BuildWorld(GridConfig(threads));
      ASSERT_TRUE(world.ok()) << world.status();
      const RunResult run =
          RunEngine(world->get(), workload, solver, /*st_index=*/true);
      EXPECT_TRUE(run.metrics.st_index_active);
      EXPECT_EQ(run.log, baseline.log);
      EXPECT_EQ(run.fingerprint, baseline.fingerprint);
    }
  }
}

// Window solvers route every batched retrieval through the hash index when
// it is active — no reverse-Dijkstra calls on the non-GBS solvers.
TEST(StToggleDifferentialTest, StPathActuallyBypassesDijkstra) {
  auto world = BuildWorld(GridConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  const StreamingWorkload workload = CleanWorkload(**world);
  const RunResult run = RunEngine(world->get(), workload,
                                  WindowSolver::kEfficientGreedy,
                                  /*st_index=*/true);
  EXPECT_TRUE(run.metrics.st_index_active);
  EXPECT_GT(run.metrics.retrieval_riders, 0);
  EXPECT_EQ(run.metrics.retrieval_dijkstra, 0);
  EXPECT_GT(run.metrics.retrieval_scanned, 0);

  const RunResult off = RunEngine(world->get(), workload,
                                  WindowSolver::kEfficientGreedy,
                                  /*st_index=*/false);
  EXPECT_GT(off.metrics.retrieval_dijkstra, 0);
  EXPECT_EQ(off.metrics.retrieval_scanned, 0);
  // Identical final candidate volume either way.
  EXPECT_EQ(run.metrics.retrieval_candidates, off.metrics.retrieval_candidates);
}

TEST(StToggleDifferentialTest, FaultedRunsByteIdentical) {
  for (WindowSolver solver :
       {WindowSolver::kEfficientGreedy, WindowSolver::kBilateral}) {
    SCOPED_TRACE(WindowSolverName(solver));
    auto baseline_world = BuildWorld(GridConfig(2));
    ASSERT_TRUE(baseline_world.ok()) << baseline_world.status();
    const StreamingWorkload workload = FaultedWorkload(**baseline_world);
    const RunResult baseline =
        RunEngine(baseline_world->get(), workload, solver, /*st_index=*/false);
    EXPECT_GT(baseline.metrics.total_edge_disruptions, 0);

    for (int threads : {2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      auto world = BuildWorld(GridConfig(threads));
      ASSERT_TRUE(world.ok()) << world.status();
      const RunResult run =
          RunEngine(world->get(), workload, solver, /*st_index=*/true);
      EXPECT_TRUE(run.metrics.st_index_active);
      EXPECT_EQ(run.log, baseline.log);
      EXPECT_EQ(run.fingerprint, baseline.fingerprint);
    }
  }
}

// The per-arrival path (window = 0) retrieves candidates for one rider at a
// time through the same entry point; the toggle must be invisible there too.
TEST(StToggleDifferentialTest, PerArrivalPathByteIdentical) {
  auto world = BuildWorld(GridConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  const StreamingWorkload workload = CleanWorkload(**world);
  const RunResult off =
      RunEngine(world->get(), workload, WindowSolver::kEfficientGreedy,
                /*st_index=*/false, /*window=*/0);
  const RunResult on =
      RunEngine(world->get(), workload, WindowSolver::kEfficientGreedy,
                /*st_index=*/true, /*window=*/0);
  ASSERT_FALSE(off.log.empty());
  EXPECT_TRUE(on.metrics.st_index_active);
  EXPECT_EQ(on.log, off.log);
  EXPECT_EQ(on.fingerprint, off.fingerprint);
}

}  // namespace
}  // namespace urr

// Determinism and safety contracts of the fault-injection layer
// (DESIGN.md §10):
//   1. under a fixed FaultPlan seed the serialized event log is
//      byte-identical at 1, 2 and 8 solver threads,
//   2. restoring any checkpoint into a fresh engine replays a
//      byte-identical log suffix and reaches the identical final
//      fingerprint,
//   3. replaying a faulted log's input events regenerates the run,
//   4. no capacity or Lemma-3.1 violation survives fault repair
//      (validate_invariants runs the full live-state check every window),
//   5. every arrived rider terminates in exactly one terminal state.
#include <gtest/gtest.h>

#include <map>

#include "engine/engine.h"
#include "exp/harness.h"

namespace urr {
namespace {

ExperimentConfig SmallConfig(int num_threads) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 100;
  cfg.num_vehicles = 20;
  cfg.seed = 42;
  cfg.num_threads = num_threads;
  return cfg;
}

StreamingWorkload FaultedWorkload(const ExperimentWorld& world) {
  Rng rng(world.config.seed + 100);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = 1.0;
  opt.cancel_fraction = 0.2;
  StreamingWorkload workload =
      MakeStreamingWorkload(world.instance, opt, &rng);
  FaultPlanOptions fopt;
  fopt.breakdown_fraction = 0.15;
  fopt.no_show_fraction = 0.1;
  fopt.num_edge_faults = 6;
  Rng fault_rng(world.config.seed + 1000);
  workload.faults = MakeFaultPlan(workload, fopt, &fault_rng);
  EXPECT_FALSE(workload.faults.Empty());
  EXPECT_TRUE(workload.faults.HasEdgeFaults());
  return workload;
}

struct RunResult {
  std::string log;
  std::string fingerprint;
  EngineMetrics metrics;
};

RunResult RunEngine(ExperimentWorld* world, const StreamingWorkload& workload,
                    const EngineConfig& config) {
  UtilityModel model(&workload.instance,
                     UtilityParams{world->config.alpha, world->config.beta});
  SolverContext ctx = world->Context();
  ctx.model = &model;
  DispatchEngine engine(&workload, &ctx, config);
  const Status st = engine.Run();
  EXPECT_TRUE(st.ok()) << st;
  return {engine.SerializedLog(), engine.SolutionFingerprint(),
          engine.metrics()};
}

TEST(FaultDeterminismTest, LogIsByteIdenticalAcrossThreadCounts) {
  for (WindowSolver solver :
       {WindowSolver::kEfficientGreedy, WindowSolver::kBilateral}) {
    RunResult baseline;
    for (int threads : {1, 2, 8}) {
      auto world = BuildWorld(SmallConfig(threads));
      ASSERT_TRUE(world.ok()) << world.status();
      const StreamingWorkload workload = FaultedWorkload(**world);
      EngineConfig cfg;
      cfg.window = 20;
      cfg.solver = solver;
      cfg.validate_invariants = true;
      const RunResult run = RunEngine(world->get(), workload, cfg);
      if (threads == 1) {
        baseline = run;
        EXPECT_FALSE(baseline.log.empty());
        EXPECT_GT(run.metrics.total_breakdowns, 0);
        EXPECT_GT(run.metrics.total_no_shows, 0);
        EXPECT_GT(run.metrics.total_edge_disruptions, 0);
      } else {
        EXPECT_EQ(run.log, baseline.log)
            << WindowSolverName(solver) << " @ " << threads << " threads";
        EXPECT_EQ(run.fingerprint, baseline.fingerprint)
            << WindowSolverName(solver) << " @ " << threads << " threads";
      }
    }
  }
}

// Restore fidelity at the state level: restoring a snapshot and immediately
// re-serializing must reproduce the snapshot byte for byte (the snapshot is
// a fixed point of Restore ∘ Checkpoint).
TEST(FaultDeterminismTest, RestoredCheckpointReserializesIdentically) {
  auto world = BuildWorld(SmallConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  const StreamingWorkload workload = FaultedWorkload(**world);
  EngineConfig cfg;
  cfg.window = 20;
  cfg.checkpoint_every = 1;
  UtilityModel model(&workload.instance,
                     UtilityParams{(*world)->config.alpha,
                                   (*world)->config.beta});
  SolverContext ctx = (*world)->Context();
  ctx.model = &model;
  DispatchEngine engine(&workload, &ctx, cfg);
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_FALSE(engine.checkpoints().empty());
  for (size_t k = 0; k < engine.checkpoints().size(); ++k) {
    SCOPED_TRACE("checkpoint " + std::to_string(k));
    SolverContext rctx = (*world)->Context();
    rctx.model = &model;
    DispatchEngine resumed(&workload, &rctx, cfg);
    ASSERT_TRUE(resumed.Restore(engine.checkpoints()[k].second).ok());
    EXPECT_EQ(resumed.Checkpoint(), engine.checkpoints()[k].second);
  }
}

TEST(FaultDeterminismTest, RestoreAtEveryBoundaryReproducesTheRun) {
  auto world = BuildWorld(SmallConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  const StreamingWorkload workload = FaultedWorkload(**world);
  EngineConfig cfg;
  cfg.window = 20;
  cfg.checkpoint_every = 1;  // every window boundary
  UtilityModel model(&workload.instance,
                     UtilityParams{(*world)->config.alpha,
                                   (*world)->config.beta});
  SolverContext ctx = (*world)->Context();
  ctx.model = &model;
  DispatchEngine engine(&workload, &ctx, cfg);
  ASSERT_TRUE(engine.Run().ok());
  ASSERT_FALSE(engine.checkpoints().empty());
  for (size_t k = 0; k < engine.checkpoints().size(); ++k) {
    SCOPED_TRACE("checkpoint " + std::to_string(k));
    SolverContext rctx = (*world)->Context();
    rctx.model = &model;
    DispatchEngine resumed(&workload, &rctx, cfg);
    ASSERT_TRUE(resumed.Restore(engine.checkpoints()[k].second).ok());
    ASSERT_TRUE(resumed.Run().ok());
    EXPECT_EQ(resumed.SerializedLog(), engine.SerializedLog());
    EXPECT_EQ(resumed.SolutionFingerprint(), engine.SolutionFingerprint());
  }
}

TEST(FaultDeterminismTest, ReplayFromFaultedLogReproducesTheRun) {
  auto world = BuildWorld(SmallConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  const StreamingWorkload workload = FaultedWorkload(**world);
  EngineConfig cfg;
  cfg.window = 20;
  UtilityModel model(&workload.instance,
                     UtilityParams{(*world)->config.alpha,
                                   (*world)->config.beta});
  SolverContext ctx = (*world)->Context();
  ctx.model = &model;
  DispatchEngine first(&workload, &ctx, cfg);
  ASSERT_TRUE(first.Run().ok());

  const auto replay_input = WorkloadFromLog(workload, first.event_log());
  ASSERT_TRUE(replay_input.ok()) << replay_input.status();
  EXPECT_EQ(replay_input->faults.edge_faults.size(),
            workload.faults.edge_faults.size());
  SolverContext ctx2 = (*world)->Context();
  ctx2.model = &model;
  DispatchEngine second(&*replay_input, &ctx2, cfg);
  ASSERT_TRUE(second.Run().ok());
  EXPECT_EQ(second.SerializedLog(), first.SerializedLog());
  EXPECT_EQ(second.SolutionFingerprint(), first.SolutionFingerprint());
}

// An explicitly empty FaultPlan must leave the engine on the exact code
// path of a fault-free workload: byte-identical log, no overlay installed,
// zero fault counters.
TEST(FaultDeterminismTest, EmptyFaultPlanIsByteIdenticalToFaultFree) {
  auto world = BuildWorld(SmallConfig(2));
  ASSERT_TRUE(world.ok()) << world.status();
  Rng rng((*world)->config.seed + 100);
  StreamingWorkloadOptions opt;
  opt.arrival_rate = 1.0;
  opt.cancel_fraction = 0.2;
  const StreamingWorkload clean =
      MakeStreamingWorkload((*world)->instance, opt, &rng);
  StreamingWorkload with_plan = clean;
  with_plan.faults = FaultPlan{};  // explicitly empty
  EngineConfig cfg;
  cfg.window = 20;
  const RunResult a = RunEngine(world->get(), clean, cfg);
  const RunResult b = RunEngine(world->get(), with_plan, cfg);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(b.metrics.total_breakdowns, 0);
  EXPECT_EQ(b.metrics.overlay_queries, 0);
  EXPECT_EQ(b.metrics.overlay_epoch, 0u);
}

// Every arrived rider ends in exactly one terminal state. Terminal events:
// DroppedOff, Expired, Cancelled, Abandoned, Rejected, and RiderNoShow
// (the no-show itself closes the rider out).
TEST(FaultDeterminismTest, EveryRiderTerminatesExactlyOnce) {
  for (double window : {0.0, 20.0}) {
    SCOPED_TRACE("window=" + std::to_string(window));
    auto world = BuildWorld(SmallConfig(2));
    ASSERT_TRUE(world.ok()) << world.status();
    const StreamingWorkload workload = FaultedWorkload(**world);
    EngineConfig cfg;
    cfg.window = window;
    cfg.validate_invariants = true;
    UtilityModel model(&workload.instance,
                       UtilityParams{(*world)->config.alpha,
                                     (*world)->config.beta});
    SolverContext ctx = (*world)->Context();
    ctx.model = &model;
    DispatchEngine engine(&workload, &ctx, cfg);
    ASSERT_TRUE(engine.Run().ok());
    std::map<RiderId, int> terminal;
    std::map<RiderId, bool> arrived;
    for (const Event& e : engine.event_log()) {
      switch (e.type) {
        case EventType::kArrival:
          arrived[e.rider] = true;
          break;
        case EventType::kDroppedOff:
        case EventType::kExpired:
        case EventType::kCancelled:
        case EventType::kAbandoned:
        case EventType::kRejected:
        case EventType::kRiderNoShow:
          ++terminal[e.rider];
          break;
        default:
          break;
      }
    }
    EXPECT_FALSE(arrived.empty());
    for (const auto& [rider, _] : arrived) {
      EXPECT_EQ(terminal[rider], 1) << "rider " << rider;
    }
    for (const auto& [rider, count] : terminal) {
      EXPECT_TRUE(arrived[rider]) << "terminal event for rider " << rider
                                  << " that never arrived";
    }
  }
}

}  // namespace
}  // namespace urr

#include "sched/reorder.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace urr {
namespace {

Result<RoadNetwork> LineCity() {
  std::vector<Edge> edges;
  for (NodeId v = 0; v + 1 < 6; ++v) {
    edges.push_back({v, v + 1, 10});
    edges.push_back({v + 1, v, 10});
  }
  return RoadNetwork::Build(6, edges);
}

class ReorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = LineCity();
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    oracle_ = std::make_unique<DijkstraOracle>(*network_);
  }
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<DijkstraOracle> oracle_;
};

TEST_F(ReorderTest, EmptyScheduleMatchesPlainInsertion) {
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip trip{0, 2, 4, 1e5, 1e6};
  auto plain = FindBestInsertion(seq, trip);
  auto reorder = FindBestInsertionWithReordering(seq, trip);
  ASSERT_TRUE(plain.ok() && reorder.ok());
  EXPECT_NEAR(reorder->delta_cost, plain->delta_cost, 1e-9);
  TransferSequence applied = ApplyReorderPlan(seq, *reorder);
  EXPECT_TRUE(applied.Validate().ok());
  EXPECT_NEAR(applied.TotalCost(), reorder->total_cost, 1e-9);
}

TEST_F(ReorderTest, ReorderBeatsNonReorderWhereOrderMatters) {
  // Vehicle at 0 committed to serve rider 0 (5 -> 0). Non-reordered
  // insertion of rider 1 (1 -> 2) can only go around that fixed plan; the
  // reordered search may pick 1,2 up on the way out to 5.
  TransferSequence seq(0, 0, 2, oracle_.get());
  RiderTrip first{0, 5, 0, 1e5, 1e6};
  ASSERT_TRUE(ArrangeSingleRider(&seq, first).ok());
  RiderTrip second{1, 1, 2, 1e5, 1e6};
  auto plain = FindBestInsertion(seq, second);
  auto reorder = FindBestInsertionWithReordering(seq, second);
  ASSERT_TRUE(plain.ok() && reorder.ok());
  EXPECT_LE(reorder->delta_cost, plain->delta_cost + 1e-9);
  TransferSequence applied = ApplyReorderPlan(seq, *reorder);
  EXPECT_TRUE(applied.Validate().ok());
}

TEST_F(ReorderTest, RespectsDeadlinesAndCapacity) {
  TransferSequence seq(0, 0, 1, oracle_.get());
  RiderTrip first{0, 1, 5, 15, 1e6};
  ASSERT_TRUE(ArrangeSingleRider(&seq, first).ok());
  // Same blocked rider as the non-reorder test: no ordering can serve it.
  RiderTrip second{1, 2, 4, 45, 60};
  auto reorder = FindBestInsertionWithReordering(seq, second);
  EXPECT_EQ(reorder.status().code(), StatusCode::kInfeasible);
}

TEST_F(ReorderTest, BudgetExhaustionReported) {
  TransferSequence seq(0, 0, 4, oracle_.get());
  for (int r = 0; r < 4; ++r) {
    RiderTrip trip{r, static_cast<NodeId>(r % 5), static_cast<NodeId>((r + 2) % 5),
                   1e7, 1e8};
    (void)ArrangeSingleRider(&seq, trip);
  }
  RiderTrip probe{9, 1, 3, 1e7, 1e8};
  auto reorder = FindBestInsertionWithReordering(seq, probe, /*max_nodes=*/5);
  EXPECT_EQ(reorder.status().code(), StatusCode::kOutOfRange);
}

struct ReorderPropertyParam {
  uint64_t seed;
  int capacity;
};

class ReorderPropertyTest
    : public ::testing::TestWithParam<ReorderPropertyParam> {};

TEST_P(ReorderPropertyTest, NeverWorseThanNonReorderAndAlwaysValid) {
  const auto param = GetParam();
  Rng rng(param.seed);
  GridCityOptions opt;
  opt.width = 8;
  opt.height = 8;
  auto g = GenerateGridCity(opt, &rng);
  ASSERT_TRUE(g.ok());
  DijkstraOracle oracle(*g);
  auto random_node = [&] {
    return static_cast<NodeId>(rng.UniformInt(0, g->num_nodes() - 1));
  };
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    TransferSequence seq(random_node(), 0, param.capacity, &oracle);
    for (int r = 0; r < 3; ++r) {
      const NodeId s = random_node();
      const NodeId e = random_node();
      if (s == e) continue;
      RiderTrip trip{r, s, e, rng.Uniform(300, 2000), 0};
      trip.dropoff_deadline =
          trip.pickup_deadline + oracle.Distance(s, e) * rng.Uniform(1.3, 2.5);
      auto plan = FindBestInsertion(seq, trip);
      if (plan.ok()) {
        ASSERT_TRUE(ApplyInsertion(&seq, trip, *plan).ok());
      }
    }
    const NodeId s = random_node();
    const NodeId e = random_node();
    if (s == e) continue;
    RiderTrip probe{7, s, e, rng.Uniform(300, 2000), 0};
    probe.dropoff_deadline =
        probe.pickup_deadline + oracle.Distance(s, e) * rng.Uniform(1.2, 2.0);
    auto plain = FindBestInsertion(seq, probe);
    auto reorder = FindBestInsertionWithReordering(seq, probe);
    if (plain.ok()) {
      // Reordering subsumes the non-reordered search space.
      ASSERT_TRUE(reorder.ok()) << "reorder infeasible where plain feasible";
      EXPECT_LE(reorder->delta_cost, plain->delta_cost + 1e-6);
      ++compared;
    }
    if (reorder.ok()) {
      TransferSequence applied = ApplyReorderPlan(seq, *reorder);
      EXPECT_TRUE(applied.Validate().ok());
      EXPECT_EQ(applied.num_stops(), seq.num_stops() + 2);
    }
  }
  EXPECT_GT(compared, 3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReorderPropertyTest,
                         ::testing::Values(ReorderPropertyParam{21, 2},
                                           ReorderPropertyParam{22, 3},
                                           ReorderPropertyParam{23, 1},
                                           ReorderPropertyParam{24, 4}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed) +
                                  "cap" + std::to_string(info.param.capacity);
                         });

}  // namespace
}  // namespace urr

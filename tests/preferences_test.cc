#include "trips/preferences.h"

#include <gtest/gtest.h>

namespace urr {
namespace {

TEST(PreferencesTest, NoOpinionMeansFullySatisfied) {
  RiderPreferences any;  // all defaults = no stated preference
  VehicleAttributes v;
  v.smoke_free = false;
  v.driver_rating = 1.0;
  EXPECT_DOUBLE_EQ(PreferenceUtility(any, v), 1.0);
}

TEST(PreferencesTest, EachCriterionCountsUniformly) {
  RiderPreferences p;
  p.preferred_brand = 3;
  VehicleAttributes v;
  v.brand = 3;
  EXPECT_DOUBLE_EQ(PreferenceUtility(p, v), 1.0);
  v.brand = 4;  // one of six uniform criteria broken
  EXPECT_NEAR(PreferenceUtility(p, v), 5.0 / 6.0, 1e-12);
}

TEST(PreferencesTest, WeightsShiftTheScore) {
  RiderPreferences p;
  p.wants_female_driver = true;
  p.weights = {1, 1, 1, 10, 1, 1};  // safety matters most (paper's example)
  VehicleAttributes v;
  v.female_driver = false;
  // 5 satisfied criteria with weight 1 each out of total weight 15.
  EXPECT_NEAR(PreferenceUtility(p, v), 5.0 / 15.0, 1e-12);
  v.female_driver = true;
  EXPECT_DOUBLE_EQ(PreferenceUtility(p, v), 1.0);
}

TEST(PreferencesTest, VehicleClassIsOrdered) {
  RiderPreferences p;
  p.min_vehicle_class = 1;
  VehicleAttributes economy;
  economy.vehicle_class = 0;
  VehicleAttributes premium;
  premium.vehicle_class = 2;
  EXPECT_LT(PreferenceUtility(p, economy), PreferenceUtility(p, premium));
  EXPECT_DOUBLE_EQ(PreferenceUtility(p, premium), 1.0);
}

TEST(PreferencesTest, RatingThreshold) {
  RiderPreferences p;
  p.min_rating = 4.5;
  VehicleAttributes v;
  v.driver_rating = 4.4;
  EXPECT_LT(PreferenceUtility(p, v), 1.0);
  v.driver_rating = 4.6;
  EXPECT_DOUBLE_EQ(PreferenceUtility(p, v), 1.0);
}

TEST(PreferencesTest, SamplingProducesBoundedUtilities) {
  Rng rng(71);
  std::vector<RiderPreferences> riders;
  std::vector<VehicleAttributes> vehicles;
  for (int i = 0; i < 40; ++i) riders.push_back(SampleRiderPreferences(&rng));
  for (int j = 0; j < 15; ++j) {
    vehicles.push_back(SampleVehicleAttributes(&rng));
  }
  const std::vector<float> matrix =
      BuildPreferenceUtilityMatrix(riders, vehicles);
  ASSERT_EQ(matrix.size(), 40u * 15u);
  double mean = 0;
  for (float m : matrix) {
    EXPECT_GE(m, 0.0f);
    EXPECT_LE(m, 1.0f);
    mean += m;
  }
  mean /= matrix.size();
  // Stated preferences are sparse, so most pairs score high but not all.
  EXPECT_GT(mean, 0.5);
  EXPECT_LT(mean, 1.0);
  // The matrix must discriminate: some pair below 0.7.
  EXPECT_TRUE(std::any_of(matrix.begin(), matrix.end(),
                          [](float m) { return m < 0.7f; }));
}

TEST(PreferencesTest, ZeroWeightsFallBackToSatisfied) {
  RiderPreferences p;
  p.weights = {0, 0, 0, 0, 0, 0};
  VehicleAttributes v;
  EXPECT_DOUBLE_EQ(PreferenceUtility(p, v), 1.0);
}

}  // namespace
}  // namespace urr

#include "trips/instance_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "exp/harness.h"
#include "urr/greedy.h"

namespace urr {
namespace {

TEST(InstanceIoTest, RoundTripPreservesEverything) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1000;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 50;
  cfg.num_vehicles = 10;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  const UrrInstance& original = (*world)->instance;

  auto back = InstanceFromCsv(InstanceToCsv(original),
                              (*world)->network.num_nodes());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_riders(), original.num_riders());
  ASSERT_EQ(back->num_vehicles(), original.num_vehicles());
  EXPECT_DOUBLE_EQ(back->now, original.now);
  for (int i = 0; i < original.num_riders(); ++i) {
    EXPECT_EQ(back->riders[static_cast<size_t>(i)].source,
              original.riders[static_cast<size_t>(i)].source);
    EXPECT_EQ(back->riders[static_cast<size_t>(i)].destination,
              original.riders[static_cast<size_t>(i)].destination);
    EXPECT_NEAR(back->riders[static_cast<size_t>(i)].pickup_deadline,
                original.riders[static_cast<size_t>(i)].pickup_deadline, 1e-6);
    EXPECT_EQ(back->riders[static_cast<size_t>(i)].user,
              original.riders[static_cast<size_t>(i)].user);
    for (int j = 0; j < original.num_vehicles(); ++j) {
      EXPECT_NEAR(back->VehicleUtility(i, j), original.VehicleUtility(i, j),
                  1e-6);
    }
  }
  for (int j = 0; j < original.num_vehicles(); ++j) {
    EXPECT_EQ(back->vehicles[static_cast<size_t>(j)].location,
              original.vehicles[static_cast<size_t>(j)].location);
    EXPECT_EQ(back->vehicles[static_cast<size_t>(j)].capacity,
              original.vehicles[static_cast<size_t>(j)].capacity);
  }
}

TEST(InstanceIoTest, ReloadedInstanceSolvesIdentically) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1000;
  cfg.num_social_users = 400;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 40;
  cfg.num_vehicles = 8;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  ExperimentWorld& w = **world;

  const std::string path = ::testing::TempDir() + "/urr_instance.csv";
  ASSERT_TRUE(WriteInstance(path, w.instance).ok());
  auto loaded = ReadInstance(path, w.network.num_nodes());
  ASSERT_TRUE(loaded.ok());
  loaded->network = &w.network;
  loaded->social = &w.social;
  loaded->history = w.history.get();

  UtilityModel model(&*loaded, UtilityParams{cfg.alpha, cfg.beta});
  SolverContext ctx = w.Context();
  ctx.model = &model;
  UrrSolution from_loaded = SolveEfficientGreedy(*loaded, &ctx);
  SolverContext ctx2 = w.Context();
  UrrSolution from_original = SolveEfficientGreedy(w.instance, &ctx2);
  EXPECT_EQ(from_loaded.assignment, from_original.assignment);
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RejectsCorruptTables) {
  CsvTable bad;
  bad.header = {"x"};
  EXPECT_FALSE(InstanceFromCsv(bad, 10).ok());

  CsvTable rows;
  rows.header = {"kind", "a", "b", "c", "d", "e"};
  rows.rows = {{"meta", "0", "1", "0", "", ""},
               {"rider", "99", "0", "1", "2", "-1"}};
  EXPECT_EQ(InstanceFromCsv(rows, 10).status().code(),
            StatusCode::kOutOfRange);

  rows.rows = {{"meta", "0", "0", "1", "", ""},
               {"vehicle", "0", "0", "", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(rows, 10).ok());  // capacity 0

  rows.rows = {{"meta", "0", "2", "0", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(rows, 10).ok());  // count mismatch

  rows.rows = {{"alien", "0", "0", "", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(rows, 10).ok());
}

}  // namespace
}  // namespace urr

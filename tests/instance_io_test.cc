#include "trips/instance_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>

#include "common/csv.h"
#include "exp/harness.h"
#include "urr/greedy.h"

namespace urr {
namespace {

TEST(InstanceIoTest, RoundTripPreservesEverything) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1000;
  cfg.num_social_users = 500;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 50;
  cfg.num_vehicles = 10;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  const UrrInstance& original = (*world)->instance;

  auto back = InstanceFromCsv(InstanceToCsv(original),
                              (*world)->network.num_nodes());
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->num_riders(), original.num_riders());
  ASSERT_EQ(back->num_vehicles(), original.num_vehicles());
  EXPECT_DOUBLE_EQ(back->now, original.now);
  for (int i = 0; i < original.num_riders(); ++i) {
    EXPECT_EQ(back->riders[static_cast<size_t>(i)].source,
              original.riders[static_cast<size_t>(i)].source);
    EXPECT_EQ(back->riders[static_cast<size_t>(i)].destination,
              original.riders[static_cast<size_t>(i)].destination);
    EXPECT_NEAR(back->riders[static_cast<size_t>(i)].pickup_deadline,
                original.riders[static_cast<size_t>(i)].pickup_deadline, 1e-6);
    EXPECT_EQ(back->riders[static_cast<size_t>(i)].user,
              original.riders[static_cast<size_t>(i)].user);
    for (int j = 0; j < original.num_vehicles(); ++j) {
      EXPECT_NEAR(back->VehicleUtility(i, j), original.VehicleUtility(i, j),
                  1e-6);
    }
  }
  for (int j = 0; j < original.num_vehicles(); ++j) {
    EXPECT_EQ(back->vehicles[static_cast<size_t>(j)].location,
              original.vehicles[static_cast<size_t>(j)].location);
    EXPECT_EQ(back->vehicles[static_cast<size_t>(j)].capacity,
              original.vehicles[static_cast<size_t>(j)].capacity);
  }
}

TEST(InstanceIoTest, ReloadedInstanceSolvesIdentically) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1000;
  cfg.num_social_users = 400;
  cfg.num_trip_records = 1200;
  cfg.num_riders = 40;
  cfg.num_vehicles = 8;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  ExperimentWorld& w = **world;

  const std::string path = ::testing::TempDir() + "/urr_instance.csv";
  ASSERT_TRUE(WriteInstance(path, w.instance).ok());
  auto loaded = ReadInstance(path, w.network.num_nodes());
  ASSERT_TRUE(loaded.ok());
  loaded->network = &w.network;
  loaded->social = &w.social;
  loaded->history = w.history.get();

  UtilityModel model(&*loaded, UtilityParams{cfg.alpha, cfg.beta});
  SolverContext ctx = w.Context();
  ctx.model = &model;
  UrrSolution from_loaded = SolveEfficientGreedy(*loaded, &ctx);
  SolverContext ctx2 = w.Context();
  UrrSolution from_original = SolveEfficientGreedy(w.instance, &ctx2);
  EXPECT_EQ(from_loaded.assignment, from_original.assignment);
  std::remove(path.c_str());
}

TEST(InstanceIoTest, RejectsCorruptTables) {
  CsvTable bad;
  bad.header = {"x"};
  EXPECT_FALSE(InstanceFromCsv(bad, 10).ok());

  CsvTable rows;
  rows.header = {"kind", "a", "b", "c", "d", "e"};
  rows.rows = {{"meta", "0", "1", "0", "", ""},
               {"rider", "99", "0", "1", "2", "-1"}};
  EXPECT_EQ(InstanceFromCsv(rows, 10).status().code(),
            StatusCode::kOutOfRange);

  rows.rows = {{"meta", "0", "0", "1", "", ""},
               {"vehicle", "0", "0", "", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(rows, 10).ok());  // capacity 0

  rows.rows = {{"meta", "0", "2", "0", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(rows, 10).ok());  // count mismatch

  rows.rows = {{"alien", "0", "0", "", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(rows, 10).ok());
}

TEST(InstanceIoTest, RejectsRaggedAndPoisonedRows) {
  CsvTable t;
  t.header = {"kind", "a", "b", "c", "d", "e"};
  // Truncated rows must be a clean error, not an out-of-bounds read.
  t.rows = {{"meta", "0", "1"}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  t.rows = {{"rider"}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  t.rows = {{}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  // Duplicate meta rows.
  t.rows = {{"meta", "0", "0", "0", "", ""}, {"meta", "0", "0", "0", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  // Counts that would drive a huge mu_v allocation.
  t.rows = {{"meta", "0", "99999999999", "99999999999", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  // NaN deadlines and inverted deadline pairs.
  t.rows = {{"meta", "0", "1", "0", "", ""},
            {"rider", "0", "1", "nan", "10", "0"}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  t.rows = {{"meta", "0", "1", "0", "", ""},
            {"rider", "0", "1", "20", "10", "0"}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
  // NaN utility sneaks past naive range checks.
  t.rows = {{"meta", "0", "1", "1", "", ""},
            {"rider", "0", "1", "5", "10", "0"},
            {"vehicle", "0", "2", "", "", ""},
            {"mu_v", "0", "0", "nan", "", ""}};
  EXPECT_FALSE(InstanceFromCsv(t, 10).ok());
}

// Property-style mutation sweep over the serialized CSV text: truncations,
// byte smashes, deleted lines and duplicated chunks must all return a
// Status error or a valid instance — never crash.
TEST(InstanceIoTest, SurvivesRandomMutations) {
  ExperimentConfig cfg;
  cfg.city_nodes = 600;
  cfg.num_social_users = 200;
  cfg.num_trip_records = 600;
  cfg.num_riders = 12;
  cfg.num_vehicles = 4;
  auto world = BuildWorld(cfg);
  ASSERT_TRUE(world.ok());
  const std::string clean = ToCsv(InstanceToCsv((*world)->instance));
  const NodeId num_nodes = (*world)->network.num_nodes();

  std::mt19937_64 rng(321);
  auto rand_int = [&](size_t lo, size_t hi) {
    return lo + static_cast<size_t>(rng() % (hi - lo + 1));
  };
  int parsed_ok = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::string text = clean;
    switch (trial % 4) {
      case 0:
        text.resize(rand_int(0, text.size()));
        break;
      case 1:
        if (!text.empty()) {
          text[rand_int(0, text.size() - 1)] =
              static_cast<char>(rand_int(1, 255));
        }
        break;
      case 2: {
        const size_t start = text.find('\n', rand_int(0, text.size() - 1));
        if (start != std::string::npos) {
          const size_t end = text.find('\n', start + 1);
          text.erase(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
        }
        break;
      }
      default:
        text += text.substr(0, rand_int(0, text.size()));
        break;
    }
    const auto table = ParseCsv(text);
    if (!table.ok()) continue;
    const auto instance = InstanceFromCsv(*table, num_nodes);
    if (instance.ok()) ++parsed_ok;
  }
  EXPECT_LT(parsed_ok, 300);  // some mutants must actually get rejected
}

}  // namespace
}  // namespace urr

#include "routing/index_snapshot.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/generators.h"
#include "routing/distance_oracle.h"
#include "routing/hub_labels.h"

namespace urr {
namespace {

uint64_t BitsOf(Cost c) {
  uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(c));
  std::memcpy(&b, &c, sizeof(b));
  return b;
}

RoadNetwork SmallCity(uint64_t seed, int width = 12, int height = 10) {
  Rng rng(seed);
  GridCityOptions opt;
  opt.width = width;
  opt.height = height;
  auto g = GenerateGridCity(opt, &rng);
  EXPECT_TRUE(g.ok());
  return *std::move(g);
}

/// Rounds every edge cost to a multiple of 1/4 so that all path sums are
/// exact in double arithmetic and all oracle kinds agree bitwise.
RoadNetwork Quantize(const RoadNetwork& net, double step = 0.25) {
  std::vector<Edge> edges = net.EdgeList();
  for (Edge& e : edges) e.cost = std::round(e.cost / step) * step;
  auto g = RoadNetwork::Build(net.num_nodes(), std::move(edges), net.coords());
  EXPECT_TRUE(g.ok());
  return *std::move(g);
}

IndexSnapshot BuildSnap(const RoadNetwork& net, int threads = 1) {
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  ChOptions options;
  options.pool = pool.get();
  auto snap = BuildIndexSnapshot(net, options);
  EXPECT_TRUE(snap.ok()) << snap.status();
  return *std::move(snap);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// --- raw byte accessors for targeted corruption --------------------------

uint32_t U32At(const std::string& bytes, size_t off) {
  uint32_t v = 0;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}
uint64_t U64At(const std::string& bytes, size_t off) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}
void PutU32At(std::string* bytes, size_t off, uint32_t v) {
  std::memcpy(bytes->data() + off, &v, sizeof(v));
}
void PutU64At(std::string* bytes, size_t off, uint64_t v) {
  std::memcpy(bytes->data() + off, &v, sizeof(v));
}
void PutDoubleAt(std::string* bytes, size_t off, double v) {
  std::memcpy(bytes->data() + off, &v, sizeof(v));
}

constexpr size_t kHeaderSize = 16;
constexpr size_t kTableEntrySize = 32;

struct Section {
  uint32_t id = 0;
  size_t table_at = 0;  // table entry position in the file
  size_t offset = 0;
  size_t size = 0;
};

std::vector<Section> SectionTable(const std::string& bytes) {
  const uint32_t count = U32At(bytes, 8);
  std::vector<Section> sections;
  for (uint32_t i = 0; i < count; ++i) {
    Section s;
    s.table_at = kHeaderSize + kTableEntrySize * i;
    s.id = U32At(bytes, s.table_at);
    s.offset = static_cast<size_t>(U64At(bytes, s.table_at + 8));
    s.size = static_cast<size_t>(U64At(bytes, s.table_at + 16));
    sections.push_back(s);
  }
  return sections;
}

/// Recomputes and patches section i's checksum so a payload mutation is
/// exercised against the structural validators, not the checksum gate.
void FixChecksum(std::string* bytes, const Section& s) {
  const uint64_t sum = Fnv1a64(bytes->data() + s.offset, s.size);
  PutU64At(bytes, s.table_at + 24, sum);
}

// --- round trips ----------------------------------------------------------

TEST(IndexSnapshotTest, SerializeParseRoundTripByteStable) {
  const RoadNetwork net = SmallCity(11);
  const IndexSnapshot snap = BuildSnap(net);
  const std::string bytes = SerializeIndexSnapshot(snap);
  ASSERT_GT(bytes.size(), kHeaderSize + 3 * kTableEntrySize);
  EXPECT_EQ(bytes.size() % 8, 0u);

  auto parsed = ParseIndexSnapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->network.num_nodes(), net.num_nodes());
  EXPECT_EQ(parsed->network.num_edges(), net.num_edges());
  EXPECT_EQ(SerializeIndexSnapshot(*parsed), bytes)
      << "parse -> re-serialize must reproduce the input bytes";
}

TEST(IndexSnapshotTest, SaveLoadRoundTrip) {
  const RoadNetwork net = SmallCity(12);
  const IndexSnapshot snap = BuildSnap(net);
  const std::string bytes = SerializeIndexSnapshot(snap);
  const std::string path = testing::TempDir() + "/roundtrip.urrx";

  ASSERT_TRUE(SaveIndexSnapshot(snap, path).ok());
  EXPECT_EQ(ReadFileBytes(path), bytes) << "file bytes == in-memory encoding";

  EXPECT_TRUE(VerifyIndexSnapshotFile(path).ok());
  auto checksum = IndexSnapshotFileChecksum(path);
  ASSERT_TRUE(checksum.ok());
  EXPECT_EQ(*checksum, Fnv1a64(bytes.data(), bytes.size()));

  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(SerializeIndexSnapshot(*loaded), bytes);
}

TEST(IndexSnapshotTest, ParallelBuildsAreBitIdentical) {
  const RoadNetwork net = SmallCity(13, 14, 12);
  const std::string serial = SerializeIndexSnapshot(BuildSnap(net, 1));
  for (const int threads : {2, 8}) {
    EXPECT_EQ(SerializeIndexSnapshot(BuildSnap(net, threads)), serial)
        << threads << "-thread build must be byte-identical to serial";
  }
}

TEST(IndexSnapshotTest, BuildStatsAreReported) {
  const RoadNetwork net = SmallCity(14);
  IndexBuildStats stats;
  auto snap = BuildIndexSnapshot(net, ChOptions{}, &stats);
  ASSERT_TRUE(snap.ok());
  EXPECT_GT(stats.ch_contract_seconds, 0.0);
  EXPECT_GT(stats.hl_label_seconds, 0.0);
}

// --- golden fixture -------------------------------------------------------

std::string GoldenPath() {
  return std::string(URR_TEST_DATA_DIR) + "/golden.urrx";
}

TEST(IndexSnapshotGoldenTest, FixtureLoadsAndReserializesIdentically) {
  const std::string bytes = ReadFileBytes(GoldenPath());
  ASSERT_FALSE(bytes.empty());
  auto parsed = ParseIndexSnapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->network.num_nodes(), 120);
  EXPECT_EQ(SerializeIndexSnapshot(*parsed), bytes)
      << "golden fixture must re-serialize byte-identically; if the .urrx "
         "layout changed on purpose, bump kIndexSnapshotVersion and "
         "regenerate the fixture";
}

TEST(IndexSnapshotGoldenTest, FixtureMatchesBuildRecipe) {
  // The fixture was produced by:
  //   urr_index build --city grid --width 12 --height 10 --seed 20170512
  //             --quantize 0.25 --threads 2 --out tests/data/golden.urrx
  // Rebuilding from that recipe must reproduce it byte for byte (generator,
  // contraction order, label extraction and encoding are all deterministic).
  const RoadNetwork net = Quantize(SmallCity(20170512, 12, 10), 0.25);
  const std::string rebuilt = SerializeIndexSnapshot(BuildSnap(net, 2));
  EXPECT_EQ(rebuilt, ReadFileBytes(GoldenPath()));
}

TEST(IndexSnapshotGoldenTest, FixtureOraclesAgreeBitwise) {
  auto parsed = ParseIndexSnapshot(ReadFileBytes(GoldenPath()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Quantized edge costs make path sums exact, so CH, hub labels and
  // reference Dijkstra must agree bitwise, not just approximately.
  DijkstraOracle ref(parsed->network);
  auto ch = ChOracle::FromHierarchy(std::move(parsed->ch));
  HubLabelOracle hl(std::make_shared<const HubLabels>(
      std::move(parsed->hub_labels)));
  Rng rng(99);
  for (int i = 0; i < 400; ++i) {
    const NodeId u = static_cast<NodeId>(
        rng.UniformInt(0, parsed->network.num_nodes() - 1));
    const NodeId v = static_cast<NodeId>(
        rng.UniformInt(0, parsed->network.num_nodes() - 1));
    const Cost want = ref.Distance(u, v);
    EXPECT_EQ(BitsOf(ch->Distance(u, v)), BitsOf(want)) << u << "->" << v;
    EXPECT_EQ(BitsOf(hl.Distance(u, v)), BitsOf(want)) << u << "->" << v;
  }
}

// --- loaded-snapshot oracle parity ---------------------------------------

TEST(IndexSnapshotTest, LoadedStackMatchesFreshBuildForAllOracleKinds) {
  const RoadNetwork net = Quantize(SmallCity(15, 13, 11));
  const std::string bytes = SerializeIndexSnapshot(BuildSnap(net));

  Rng rng(7);
  std::vector<NodeId> sources, targets;
  for (int i = 0; i < 12; ++i) {
    sources.push_back(static_cast<NodeId>(
        rng.UniformInt(0, net.num_nodes() - 1)));
    targets.push_back(static_cast<NodeId>(
        rng.UniformInt(0, net.num_nodes() - 1)));
  }
  std::vector<Cost> fresh_out(sources.size() * targets.size());
  std::vector<Cost> loaded_out(fresh_out.size());

  for (const OracleKind kind :
       {OracleKind::kDijkstra, OracleKind::kCh, OracleKind::kCachingCh,
        OracleKind::kHubLabel}) {
    auto fresh = BuildOracleStack(net, kind);
    ASSERT_TRUE(fresh.ok()) << fresh.status();

    auto parsed = ParseIndexSnapshot(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    auto loaded = OracleStackFromParts(net, std::move(parsed->ch),
                                       std::move(parsed->hub_labels), kind);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    ASSERT_NE(loaded->active, nullptr);

    fresh->active->BatchDistances(sources, targets, fresh_out.data());
    loaded->active->BatchDistances(sources, targets, loaded_out.data());
    for (size_t k = 0; k < fresh_out.size(); ++k) {
      ASSERT_EQ(BitsOf(loaded_out[k]), BitsOf(fresh_out[k]))
          << OracleKindName(kind) << " rectangle entry " << k;
    }
    // Scalar path too (the caching wrapper takes a different code path).
    for (size_t k = 0; k < sources.size(); ++k) {
      ASSERT_EQ(BitsOf(loaded->active->Distance(sources[k], targets[k])),
                BitsOf(fresh->active->Distance(sources[k], targets[k])))
          << OracleKindName(kind) << " scalar pair " << k;
    }
  }
}

// --- corruption battery ---------------------------------------------------

class IndexSnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const RoadNetwork net = SmallCity(16);
    bytes_ = SerializeIndexSnapshot(BuildSnap(net));
    sections_ = SectionTable(bytes_);
    ASSERT_EQ(sections_.size(), 3u);
  }

  /// The mutated bytes must parse to an error Status (and, running under
  /// ASan/UBSan in CI, must not read out of bounds or crash).
  void ExpectRejected(const std::string& mutated, const std::string& what) {
    auto parsed = ParseIndexSnapshot(mutated);
    EXPECT_FALSE(parsed.ok()) << "corruption not detected: " << what;
  }

  std::string bytes_;
  std::vector<Section> sections_;
};

TEST_F(IndexSnapshotCorruptionTest, TruncationAtEveryBoundaryFailsCleanly) {
  std::vector<size_t> lengths;
  for (size_t n = 0; n <= kHeaderSize + 3 * kTableEntrySize + 8; ++n) {
    lengths.push_back(n);  // every prefix of header + table
  }
  for (const Section& s : sections_) {
    for (const size_t at : {s.offset, s.offset + 1, s.offset + s.size - 1,
                            s.offset + s.size, s.offset + s.size + 1}) {
      if (at < bytes_.size()) lengths.push_back(at);
    }
  }
  lengths.push_back(bytes_.size() - 1);
  for (size_t n = 0; n < bytes_.size(); n += 997) lengths.push_back(n);
  for (const size_t n : lengths) {
    ExpectRejected(bytes_.substr(0, n),
                   "truncated to " + std::to_string(n) + " bytes");
  }
}

TEST_F(IndexSnapshotCorruptionTest, TrailingGarbageFails) {
  ExpectRejected(bytes_ + std::string(8, '\0'), "8 trailing bytes");
  ExpectRejected(bytes_ + "x", "1 trailing byte");
}

TEST_F(IndexSnapshotCorruptionTest, FlippedMagicFails) {
  for (size_t i = 0; i < 4; ++i) {
    std::string mutated = bytes_;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    ExpectRejected(mutated, "magic byte " + std::to_string(i));
  }
}

TEST_F(IndexSnapshotCorruptionTest, WrongVersionFails) {
  for (const uint32_t version : {0u, 2u, 0xffffffffu}) {
    std::string mutated = bytes_;
    PutU32At(&mutated, 4, version);
    ExpectRejected(mutated, "version " + std::to_string(version));
  }
}

TEST_F(IndexSnapshotCorruptionTest, NonzeroFlagsFail) {
  std::string mutated = bytes_;
  PutU32At(&mutated, 12, 1);
  ExpectRejected(mutated, "flags = 1");
}

TEST_F(IndexSnapshotCorruptionTest, BadSectionCountFails) {
  for (const uint32_t count : {0u, 1u, 2u, 4u, 100u, 0xffffffffu}) {
    std::string mutated = bytes_;
    PutU32At(&mutated, 8, count);
    ExpectRejected(mutated, "section count " + std::to_string(count));
  }
}

TEST_F(IndexSnapshotCorruptionTest, DuplicateSectionIdFails) {
  std::string mutated = bytes_;
  PutU32At(&mutated, sections_[1].table_at, sections_[0].id);
  ExpectRejected(mutated, "duplicate section id");
}

TEST_F(IndexSnapshotCorruptionTest, NonzeroReservedFieldFails) {
  std::string mutated = bytes_;
  PutU32At(&mutated, sections_[0].table_at + 4, 0xdeadbeef);
  ExpectRejected(mutated, "nonzero reserved field");
}

TEST_F(IndexSnapshotCorruptionTest, HostileTableGeometryFails) {
  // Overlap / gap: nudge the middle section's offset both ways.
  for (const int64_t delta : {-8, 8}) {
    std::string mutated = bytes_;
    PutU64At(&mutated, sections_[1].table_at + 8,
             static_cast<uint64_t>(
                 static_cast<int64_t>(sections_[1].offset) + delta));
    ExpectRejected(mutated, "offset shifted by " + std::to_string(delta));
  }
  // Size overflows the file; size so large offset+size wraps around.
  for (const uint64_t size :
       {static_cast<uint64_t>(bytes_.size()),
        std::numeric_limits<uint64_t>::max() - 8}) {
    std::string mutated = bytes_;
    PutU64At(&mutated, sections_[2].table_at + 16, size);
    ExpectRejected(mutated, "hostile size " + std::to_string(size));
  }
}

TEST_F(IndexSnapshotCorruptionTest, PayloadBitFlipTripsChecksum) {
  for (const Section& s : sections_) {
    std::string mutated = bytes_;
    mutated[s.offset + s.size / 2] ^= 0x01;
    auto parsed = ParseIndexSnapshot(mutated);
    ASSERT_FALSE(parsed.ok()) << "bit flip in section " << s.id;
    EXPECT_NE(parsed.status().ToString().find("checksum"), std::string::npos)
        << parsed.status();
  }
}

TEST_F(IndexSnapshotCorruptionTest, FlippedChecksumFieldFails) {
  std::string mutated = bytes_;
  PutU64At(&mutated, sections_[0].table_at + 24,
           U64At(bytes_, sections_[0].table_at + 24) ^ 1);
  ExpectRejected(mutated, "flipped checksum field");
}

TEST_F(IndexSnapshotCorruptionTest, OverflowCountRejectedPastChecksum) {
  // A hostile element count must be caught by the bounds-capped vector
  // reader even when the section checksum has been recomputed to match.
  std::string mutated = bytes_;
  const Section& hl = sections_[2];
  // HL payload: [i32 n][u64 count of fwd_begin]... — blow up that count.
  PutU64At(&mutated, hl.offset + 4, uint64_t{1} << 60);
  FixChecksum(&mutated, hl);
  ExpectRejected(mutated, "2^60 element count");
}

TEST_F(IndexSnapshotCorruptionTest, NanCostRejectedPastChecksum) {
  std::string mutated = bytes_;
  const Section& hl = sections_[2];
  // HL payload: [i32 n][u64 n+1][i64 fwd_begin x n+1][u64 F][i32 hub x F]
  //             [u64 F][double fwd_cost x F]...
  const uint64_t n = U64At(bytes_, hl.offset + 4) - 1;
  const uint64_t f = U64At(bytes_, hl.offset + 4 + 8 + (n + 1) * 8);
  ASSERT_GT(f, 0u);
  const size_t cost0 = hl.offset + 4 + 8 + (n + 1) * 8 + 8 + f * 4 + 8;
  PutDoubleAt(&mutated, cost0, std::numeric_limits<double>::quiet_NaN());
  FixChecksum(&mutated, hl);
  ExpectRejected(mutated, "NaN label cost");

  std::string negative = bytes_;
  PutDoubleAt(&negative, cost0, -1.0);
  FixChecksum(&negative, hl);
  ExpectRejected(negative, "negative label cost");
}

TEST_F(IndexSnapshotCorruptionTest, RankNotAPermutationRejectedPastChecksum) {
  std::string mutated = bytes_;
  const Section& ch = sections_[1];
  // CH payload: [i32 n][u64 n][i32 rank x n]... — duplicate rank[0] into
  // rank[1] so the order is no longer a permutation.
  const size_t rank0 = ch.offset + 4 + 8;
  PutU32At(&mutated, rank0 + 4, U32At(bytes_, rank0));
  FixChecksum(&mutated, ch);
  ExpectRejected(mutated, "rank array not a permutation");
}

TEST_F(IndexSnapshotCorruptionTest, NonMonotoneGraphOffsetsRejected) {
  std::string mutated = bytes_;
  const Section& graph = sections_[0];
  // Graph payload: [i32 n][u32 has_coords][u64 n+1][i64 out_begin x n+1]...
  const size_t begin0 = graph.offset + 4 + 4 + 8;
  PutU64At(&mutated, begin0 + 8, std::numeric_limits<uint64_t>::max());
  FixChecksum(&mutated, graph);
  ExpectRejected(mutated, "non-monotone CSR offsets");
}

TEST_F(IndexSnapshotCorruptionTest, LoadOfCorruptFileFailsWithPathContext) {
  const std::string path = testing::TempDir() + "/corrupt.urrx";
  std::string mutated = bytes_;
  mutated[mutated.size() - 1] ^= 0xff;
  WriteFileBytes(path, mutated);
  auto loaded = LoadIndexSnapshot(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().ToString().find(path), std::string::npos)
      << "error should name the offending file: " << loaded.status();
  EXPECT_FALSE(VerifyIndexSnapshotFile(path).ok());
}

TEST_F(IndexSnapshotCorruptionTest, MissingFileFails) {
  EXPECT_FALSE(LoadIndexSnapshot("/nonexistent/no.urrx").ok());
  EXPECT_FALSE(VerifyIndexSnapshotFile("/nonexistent/no.urrx").ok());
  EXPECT_FALSE(IndexSnapshotFileChecksum("/nonexistent/no.urrx").ok());
}

// --- component-level deserializer hardening ------------------------------

TEST(HubLabelsDeserializeTest, RejectsDescendingHubs) {
  const RoadNetwork net = SmallCity(17);
  const IndexSnapshot snap = BuildSnap(net);
  BinaryWriter writer;
  snap.hub_labels.Serialize(&writer);
  std::string bytes(writer.buffer());

  // Find a node with >= 2 forward entries and swap its first two hubs so the
  // strictly-ascending invariant breaks.
  const uint64_t n = U64At(bytes, 4) - 1;
  size_t swap_at = 0;
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    if (snap.hub_labels.ForwardHubs(v).size() >= 2) {
      const size_t hubs0 = 4 + 8 + (n + 1) * 8 + 8;
      auto begin = snap.hub_labels.ForwardHubs(0);
      (void)begin;
      size_t entry = 0;
      for (NodeId w = 0; w < v; ++w) {
        entry += snap.hub_labels.ForwardHubs(w).size();
      }
      swap_at = hubs0 + entry * 4;
      break;
    }
  }
  ASSERT_GT(swap_at, 0u);
  const uint32_t a = U32At(bytes, swap_at);
  const uint32_t b = U32At(bytes, swap_at + 4);
  ASSERT_LT(a, b);
  PutU32At(&bytes, swap_at, b);
  PutU32At(&bytes, swap_at + 4, a);

  BinaryReader reader(bytes);
  EXPECT_FALSE(HubLabels::Deserialize(&reader).ok());
}

TEST(HubLabelsDeserializeTest, RejectsTruncatedPayload) {
  const RoadNetwork net = SmallCity(18);
  const IndexSnapshot snap = BuildSnap(net);
  BinaryWriter writer;
  snap.hub_labels.Serialize(&writer);
  const std::string bytes(writer.buffer());
  for (size_t len = 0; len < bytes.size(); len += 13) {
    BinaryReader reader(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(HubLabels::Deserialize(&reader).ok()) << "length " << len;
  }
}

}  // namespace
}  // namespace urr

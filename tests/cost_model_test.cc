#include "urr/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace urr {
namespace {

GbsCostModel PaperishModel() {
  GbsCostModel m;
  m.s = 10000;
  m.m = 5000;
  m.n = 200;
  m.c_k = 1.0;
  return m;
}

TEST(CostModelTest, CostMatchesFormula) {
  GbsCostModel m = PaperishModel();
  const double eta = 50;
  const double expected = m.s * (m.c_k + std::log(eta)) +
                          2 * m.m * std::log(eta) + eta * std::log(eta) +
                          (m.m * m.n / eta) * std::log(m.n / eta);
  EXPECT_NEAR(m.Cost(eta), expected, 1e-9);
}

TEST(CostModelTest, DerivativeSignChanges) {
  GbsCostModel m = PaperishModel();
  // Small η: the (mn/η²) term dominates -> negative derivative.
  EXPECT_LT(m.Derivative(2), 0);
  // Huge η: the log terms dominate -> positive derivative.
  EXPECT_GT(m.Derivative(m.s), 0);
}

TEST(CostModelTest, BestEtaIsACriticalPoint) {
  GbsCostModel m = PaperishModel();
  const double eta = m.BestEta();
  ASSERT_GT(eta, 1);
  ASSERT_LT(eta, m.s);
  EXPECT_NEAR(m.Derivative(eta), 0, 1e-3 * std::abs(m.Derivative(2)));
  // It is a minimum: cost is higher a bit to each side.
  EXPECT_LT(m.Cost(eta), m.Cost(eta * 0.5));
  EXPECT_LT(m.Cost(eta), m.Cost(eta * 2.0));
}

TEST(CostModelTest, BestEtaGrowsWithWorkload) {
  GbsCostModel small = PaperishModel();
  GbsCostModel big = PaperishModel();
  big.m = 50000;
  // More riders per area push the optimum towards more, smaller areas.
  EXPECT_GT(big.BestEta(), small.BestEta());
}

TEST(CostModelTest, PickBestKSelectsNearestEta) {
  GbsCostModel m = PaperishModel();
  const double target = m.BestEta();
  // Synthetic η(k): halves with each k step from s/4.
  auto measure = [&](int k) { return m.s / std::pow(2.0, k); };
  const int k = PickBestK(m, {2, 3, 4, 6, 8, 10, 12}, measure);
  // The chosen k's eta must be the closest to target among candidates.
  double best_gap = 1e300;
  int want = -1;
  for (int cand : {2, 3, 4, 6, 8, 10, 12}) {
    const double gap = std::abs(measure(cand) - target);
    if (gap < best_gap) {
      best_gap = gap;
      want = cand;
    }
  }
  EXPECT_EQ(k, want);
}

TEST(CostModelTest, PickBestKEmptyCandidates) {
  GbsCostModel m = PaperishModel();
  EXPECT_EQ(PickBestK(m, {}, [](int) { return 1.0; }), 4);  // fallback
}

TEST(CostModelTest, DegenerateEtaAboveN) {
  // For η >= n the per-group term vanishes; cost must stay finite and
  // increasing in η.
  GbsCostModel m = PaperishModel();
  const double c1 = m.Cost(m.n);
  const double c2 = m.Cost(m.n * 4);
  EXPECT_TRUE(std::isfinite(c1));
  EXPECT_GT(c2, c1);
}

}  // namespace
}  // namespace urr

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace urr {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(3, 3), 3);
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(2);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(2.0, 4.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 4.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 3.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(3);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.Bernoulli(0.3);
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.Poisson(2.5);
  EXPECT_NEAR(sum / 20000, 2.5, 0.1);
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(4);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, ZipfReturnsInRangeAndSkewed) {
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const size_t k = rng.Zipf(100, 1.2);
    ASSERT_LT(k, 100u);
    ++counts[k];
  }
  // Rank 0 must be sampled much more often than rank 50.
  EXPECT_GT(counts[0], counts[50] * 3);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(6);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    const size_t k = rng.Discrete(w);
    ASSERT_LT(k, 3u);
    ++counts[k];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(RngTest, DiscreteAllZeroReturnsSize) {
  Rng rng(6);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_EQ(rng.Discrete(w), 2u);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(8);
  std::vector<double> xs(20001);
  for (double& x : xs) x = rng.LogNormal(6.4, 0.75);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  // Median of LogNormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[10000], std::exp(6.4), std::exp(6.4) * 0.1);
}

}  // namespace
}  // namespace urr

#include "social/history_similarity.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "urr/instance.h"

namespace urr {
namespace {

class HistorySimilarityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(51);
    GridCityOptions opt;
    opt.width = 12;
    opt.height = 12;
    auto g = GenerateGridCity(opt, &rng);
    ASSERT_TRUE(g.ok());
    network_ = std::make_unique<RoadNetwork>(*std::move(g));
    rng_ = std::make_unique<Rng>(52);
    auto checkins = CheckInMap::Generate(*network_, /*num_users=*/30,
                                         /*per_user=*/5, rng_.get());
    ASSERT_TRUE(checkins.ok());
    checkins_ = std::make_unique<CheckInMap>(*std::move(checkins));
  }
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<CheckInMap> checkins_;
};

TEST_F(HistorySimilarityTest, BuildsAndBounds) {
  auto sim = LocationHistorySimilarity::Build(*network_, *checkins_, 30);
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_EQ(sim->num_users(), 30);
  for (UserId a = 0; a < 30; ++a) {
    EXPECT_GE(sim->NumPlaces(a), 1);
    for (UserId b = 0; b < 30; ++b) {
      const double s = sim->Similarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      EXPECT_DOUBLE_EQ(s, sim->Similarity(b, a));  // symmetric
    }
    EXPECT_DOUBLE_EQ(sim->Similarity(a, a), 1.0);  // identical place sets
  }
}

TEST_F(HistorySimilarityTest, OutOfRangeUsersScoreZero) {
  auto sim = LocationHistorySimilarity::Build(*network_, *checkins_, 30);
  ASSERT_TRUE(sim.ok());
  EXPECT_DOUBLE_EQ(sim->Similarity(-1, 0), 0.0);
  EXPECT_DOUBLE_EQ(sim->Similarity(0, 99), 0.0);
  EXPECT_EQ(sim->NumPlaces(99), 0);
}

TEST_F(HistorySimilarityTest, RejectsBadInputs) {
  EXPECT_FALSE(
      LocationHistorySimilarity::Build(*network_, *checkins_, 0).ok());
  EXPECT_FALSE(
      LocationHistorySimilarity::Build(*network_, *checkins_, 30, 0).ok());
  // Users outside num_users in the check-ins.
  EXPECT_FALSE(LocationHistorySimilarity::Build(*network_, *checkins_, 5).ok());
  auto no_coords = RoadNetwork::Build(2, {{0, 1, 1}});
  ASSERT_TRUE(no_coords.ok());
  EXPECT_FALSE(
      LocationHistorySimilarity::Build(*no_coords, *checkins_, 30).ok());
}

TEST_F(HistorySimilarityTest, NearbyUsersScoreHigherThanFarOnes) {
  // Users check in around homes (random walk <= 6 hops); two users with the
  // same home cell overlap heavily, users across the map rarely do. Check
  // the aggregate: average same-cell similarity > average cross-map.
  auto sim = LocationHistorySimilarity::Build(*network_, *checkins_, 30, 64);
  ASSERT_TRUE(sim.ok());
  double self_like = 0;
  int pairs = 0;
  double cross = 0;
  int cross_pairs = 0;
  for (UserId a = 0; a < 30; ++a) {
    for (UserId b = a + 1; b < 30; ++b) {
      const double s = sim->Similarity(a, b);
      if (s > 0) {
        self_like += s;
        ++pairs;
      } else {
        cross += s;
        ++cross_pairs;
      }
    }
  }
  // Some pairs overlap, many do not — the signal exists.
  EXPECT_GT(pairs, 0);
  EXPECT_GT(cross_pairs, 0);
}

TEST_F(HistorySimilarityTest, InstanceFallbackUsesHistoryForFriendless) {
  auto sim = LocationHistorySimilarity::Build(*network_, *checkins_, 30);
  ASSERT_TRUE(sim.ok());
  // Social graph where users 0,1 have friends but 2,3 are isolated.
  auto social = SocialGraph::Build(30, {{0, 1}});
  ASSERT_TRUE(social.ok());
  UrrInstance instance;
  instance.network = network_.get();
  instance.social = &*social;
  instance.history = &*sim;
  instance.riders = {
      {0, 1, 1, 2, /*user=*/0}, {0, 1, 1, 2, /*user=*/1},
      {0, 1, 1, 2, /*user=*/2}, {0, 1, 1, 2, /*user=*/3},
  };
  // Riders 0,1: social Jaccard (identical friendless sets aside -> their
  // friend sets are {1},{0}: disjoint -> 0).
  EXPECT_DOUBLE_EQ(instance.Similarity(0, 1), 0.0);
  // Riders 2,3: no social presence -> history fallback.
  EXPECT_DOUBLE_EQ(instance.Similarity(2, 3), sim->Similarity(2, 3));
  // Rider without identity scores 0.
  instance.riders.push_back({0, 1, 1, 2, -1});
  EXPECT_DOUBLE_EQ(instance.Similarity(0, 4), 0.0);
}

}  // namespace
}  // namespace urr

#include "exp/simulation.h"

#include <gtest/gtest.h>

namespace urr {
namespace {

std::unique_ptr<ExperimentWorld> SmallWorld(uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.city_nodes = 1200;
  cfg.num_social_users = 800;
  cfg.num_trip_records = 1500;
  cfg.num_riders = 60;
  cfg.num_vehicles = 15;
  cfg.seed = seed;
  cfg.gbs.k = 3;
  cfg.gbs.d_max = 250;
  auto world = BuildWorld(cfg);
  EXPECT_TRUE(world.ok()) << world.status();
  return *std::move(world);
}

TEST(SimulationTest, RunsAllFramesAndAggregates) {
  auto world = SmallWorld();
  SimulationConfig sim;
  sim.num_frames = 3;
  sim.riders_per_frame = 40;
  auto report = RunRollingHorizon(world.get(), sim);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->frames.size(), 3u);
  int arrived = 0, served = 0;
  for (const FrameReport& f : report->frames) {
    EXPECT_GE(f.arrived, 1);
    EXPECT_LE(f.served, f.arrived);
    EXPECT_GE(f.utility, 0);
    arrived += f.arrived;
    served += f.served;
  }
  EXPECT_EQ(report->total_arrived, arrived);
  EXPECT_EQ(report->total_served, served);
  EXPECT_GT(report->ServiceRate(), 0);
  EXPECT_LE(report->ServiceRate(), 1.0);
}

TEST(SimulationTest, FrameStartsAdvance) {
  auto world = SmallWorld();
  SimulationConfig sim;
  sim.num_frames = 2;
  sim.riders_per_frame = 30;
  sim.frame_minutes = 20;
  auto report = RunRollingHorizon(world.get(), sim);
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(report->frames[0].frame_start, 0);
  EXPECT_DOUBLE_EQ(report->frames[1].frame_start, 1200);
}

TEST(SimulationTest, WorksWithEveryApproach) {
  auto world = SmallWorld(7);
  for (Approach a : AllApproaches()) {
    SimulationConfig sim;
    sim.num_frames = 2;
    sim.riders_per_frame = 25;
    sim.approach = a;
    auto report = RunRollingHorizon(world.get(), sim);
    ASSERT_TRUE(report.ok()) << ApproachName(a) << ": " << report.status();
    EXPECT_GT(report->total_served, 0) << ApproachName(a);
  }
}

TEST(SimulationTest, RejectsBadConfig) {
  auto world = SmallWorld();
  SimulationConfig sim;
  sim.num_frames = 0;
  EXPECT_FALSE(RunRollingHorizon(world.get(), sim).ok());
  sim.num_frames = 1;
  sim.riders_per_frame = 0;
  EXPECT_FALSE(RunRollingHorizon(world.get(), sim).ok());
}

TEST(SimulationTest, ServiceKeepsUpAcrossFrames) {
  // The fleet relocates with demand, so later frames should not collapse
  // (service rate of the last frame within a reasonable band of the first).
  auto world = SmallWorld(11);
  SimulationConfig sim;
  sim.num_frames = 4;
  sim.riders_per_frame = 40;
  auto report = RunRollingHorizon(world.get(), sim);
  ASSERT_TRUE(report.ok());
  const FrameReport& first = report->frames.front();
  const FrameReport& last = report->frames.back();
  ASSERT_GT(first.arrived, 0);
  ASSERT_GT(last.arrived, 0);
  const double r0 = static_cast<double>(first.served) / first.arrived;
  const double r3 = static_cast<double>(last.served) / last.arrived;
  EXPECT_GT(r3, r0 * 0.5);
}

}  // namespace
}  // namespace urr
